//! Hierarchical operator trees for `EXPLAIN ANALYZE` output.
//!
//! An [`ExplainNode`] is one operator in an executed query's plan —
//! a FLWR clause, a σ selection, an index build, a per-pattern-node
//! retrieval, a refinement level, a search — annotated with the actual
//! cardinalities, pruning ratios, and timings observed while running
//! it. The engine assembles the tree; this module owns the generic
//! structure and its text/JSON renderings so every layer (and the CLI)
//! shares one format.
//!
//! ```
//! use gql_core::obs::explain::ExplainNode;
//! use gql_core::obs::trace::ArgValue;
//!
//! let mut root = ExplainNode::new("select");
//! root.prop("graphs", ArgValue::UInt(3));
//! root.child(ExplainNode::new("search"));
//! let text = root.render_text();
//! assert!(text.starts_with("select"));
//! assert!(text.contains("└─ search"));
//! ```

use std::fmt::Write as _;

use super::trace::ArgValue;

/// One operator in an explain tree: a label, ordered key/value
/// annotations, and child operators.
#[derive(Debug, Clone, PartialEq)]
pub struct ExplainNode {
    /// Operator name (e.g. `flwr`, `select`, `retrieve`, `refine.level`).
    pub label: String,
    /// Annotations in insertion order (cardinalities, ratios, timings).
    pub props: Vec<(String, ArgValue)>,
    /// Child operators, outermost-first in execution order.
    pub children: Vec<ExplainNode>,
}

impl ExplainNode {
    /// A leaf node with the given label and no annotations.
    pub fn new(label: impl Into<String>) -> ExplainNode {
        ExplainNode {
            label: label.into(),
            props: Vec::new(),
            children: Vec::new(),
        }
    }

    /// Appends an annotation (kept in insertion order).
    pub fn prop(&mut self, key: impl Into<String>, value: ArgValue) -> &mut Self {
        self.props.push((key.into(), value));
        self
    }

    /// Appends a child operator.
    pub fn child(&mut self, node: ExplainNode) -> &mut Self {
        self.children.push(node);
        self
    }

    /// Renders the tree as indented text with box-drawing connectors:
    ///
    /// ```text
    /// flwr  (elapsed_ms=1.2)
    /// └─ select  (graphs=3)
    ///    ├─ index build  (ms=0.1)
    ///    └─ graph[0]  (matches=2)
    /// ```
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        self.render_line(&mut out);
        out.push('\n');
        self.render_children(&mut out, "");
        out
    }

    fn render_line(&self, out: &mut String) {
        out.push_str(&self.label);
        if !self.props.is_empty() {
            out.push_str("  (");
            for (i, (k, v)) in self.props.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "{k}={}", v.render_text());
            }
            out.push(')');
        }
    }

    fn render_children(&self, out: &mut String, prefix: &str) {
        let last = self.children.len().saturating_sub(1);
        for (i, child) in self.children.iter().enumerate() {
            out.push_str(prefix);
            out.push_str(if i == last { "└─ " } else { "├─ " });
            child.render_line(out);
            out.push('\n');
            let next = format!("{prefix}{}", if i == last { "   " } else { "│  " });
            child.render_children(out, &next);
        }
    }

    /// Renders the tree as a JSON object:
    /// `{"label": ..., "props": {...}, "children": [...]}`.
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        self.render_json_into(&mut out, 0);
        out.push('\n');
        out
    }

    fn render_json_into(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        let _ = write!(
            out,
            "{pad}{{\n{pad}  \"label\": \"{}\",\n{pad}  \"props\": {{",
            super::json_escape(&self.label)
        );
        for (i, (k, v)) in self.props.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n{pad}    \"{}\": ", super::json_escape(k));
            match v {
                ArgValue::Int(n) => {
                    let _ = write!(out, "{n}");
                }
                ArgValue::UInt(n) => {
                    let _ = write!(out, "{n}");
                }
                ArgValue::Float(f) if f.is_finite() => {
                    let _ = write!(out, "{f}");
                }
                ArgValue::Float(f) => {
                    let _ = write!(out, "\"{f}\"");
                }
                ArgValue::Str(s) => {
                    let _ = write!(out, "\"{}\"", super::json_escape(s));
                }
                ArgValue::Bool(b) => {
                    let _ = write!(out, "{b}");
                }
            }
        }
        if self.props.is_empty() {
            out.push_str("},");
        } else {
            let _ = write!(out, "\n{pad}  }},");
        }
        let _ = write!(out, "\n{pad}  \"children\": [");
        for (i, child) in self.children.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('\n');
            child.render_json_into(out, indent + 2);
        }
        if self.children.is_empty() {
            let _ = write!(out, "]\n{pad}}}");
        } else {
            let _ = write!(out, "\n{pad}  ]\n{pad}}}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::json::validate_json;

    fn sample() -> ExplainNode {
        let mut root = ExplainNode::new("flwr");
        root.prop("elapsed_ms", ArgValue::Float(1.25));
        let mut select = ExplainNode::new("select");
        select.prop("graphs", ArgValue::UInt(3));
        select.prop("collection", ArgValue::Str("db\"x".into()));
        let mut index = ExplainNode::new("index build");
        index.prop("cached", ArgValue::Bool(true));
        select.child(index);
        select.child(ExplainNode::new("graph[0]"));
        select.child(ExplainNode::new("graph[1]"));
        root.child(select);
        root
    }

    #[test]
    fn text_rendering_draws_the_tree() {
        let text = sample().render_text();
        assert!(text.starts_with("flwr  (elapsed_ms=1.250)\n"), "{text}");
        assert!(
            text.contains("└─ select  (graphs=3, collection=db\"x)"),
            "{text}"
        );
        assert!(text.contains("   ├─ index build  (cached=true)"), "{text}");
        assert!(text.contains("   ├─ graph[0]"), "{text}");
        assert!(text.contains("   └─ graph[1]"), "{text}");
        // Nesting guide for non-last parents.
        let mut deep = ExplainNode::new("a");
        let mut b = ExplainNode::new("b");
        b.child(ExplainNode::new("c"));
        deep.child(b);
        deep.child(ExplainNode::new("d"));
        let text = deep.render_text();
        assert!(text.contains("│  └─ c"), "{text}");
    }

    #[test]
    fn json_rendering_is_well_formed() {
        let json = sample().render_json();
        validate_json(&json).expect("explain JSON must be well-formed");
        assert!(json.contains("\"label\": \"flwr\""), "{json}");
        assert!(json.contains("\"graphs\": 3"), "{json}");
        assert!(json.contains("\"db\\\"x\""), "{json}");
    }

    #[test]
    fn empty_node_renders_cleanly() {
        let node = ExplainNode::new("leaf");
        assert_eq!(node.render_text(), "leaf\n");
        validate_json(&node.render_json()).unwrap();
    }
}
