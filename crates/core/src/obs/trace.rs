//! Per-query structured tracing: timestamped begin/end events with
//! thread ids and typed arguments, exportable as Chrome trace-event
//! JSON (loadable in Perfetto / `chrome://tracing`).
//!
//! Where [`super::Obs`] aggregates counters and phase totals across a
//! whole run, a [`TraceSink`] records *individual* events — one
//! retrieval per pattern node, one refinement level, one search chunk
//! per worker — so per-query questions ("which pattern node's candidate
//! set exploded?", "did refinement pay for itself?") have answers on a
//! timeline.
//!
//! Design rules mirror the registry's:
//!
//! - **Disabled means free.** Pipeline code holds an
//!   `Option<Arc<TraceSink>>`; `None` is a skipped branch. Events are
//!   coarse (per phase / pattern node / refine level / search chunk),
//!   never per candidate.
//! - **Per-thread buffers.** Each recording thread is assigned a small
//!   integer id (stable for the thread's lifetime) and appends to a
//!   sharded buffer selected by that id, so concurrent workers almost
//!   never contend on a lock; the export pass merges and time-sorts.
//! - **Std-only.** No serde: the Chrome trace-event format is flat
//!   enough to emit by hand, and [`super::json`] checks well-formedness
//!   in tests.
//!
//! ```
//! use gql_core::obs::trace::{ArgValue, TraceSink};
//!
//! let sink = TraceSink::new();
//! {
//!     let mut span = sink.span("match.search", "match");
//!     span.arg("steps", ArgValue::UInt(42));
//! } // records a complete ("X") event on drop
//! let json = sink.render_chrome_json();
//! assert!(json.contains("\"traceEvents\""));
//! assert!(json.contains("\"match.search\""));
//! ```

use std::fmt;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// A typed event argument (rendered without quotes for numbers and
/// booleans, quoted and escaped for strings).
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    /// Signed integer.
    Int(i64),
    /// Unsigned integer (counters, cardinalities).
    UInt(u64),
    /// Floating point (ratios). Non-finite values render as strings,
    /// since JSON has no NaN/Infinity literals.
    Float(f64),
    /// Free-form text.
    Str(String),
    /// Boolean flag.
    Bool(bool),
}

impl ArgValue {
    fn render_json(&self, out: &mut String) {
        match self {
            ArgValue::Int(v) => {
                let _ = write!(out, "{v}");
            }
            ArgValue::UInt(v) => {
                let _ = write!(out, "{v}");
            }
            ArgValue::Float(v) if v.is_finite() => {
                let _ = write!(out, "{v}");
            }
            ArgValue::Float(v) => {
                let _ = write!(out, "\"{v}\"");
            }
            ArgValue::Str(s) => {
                let _ = write!(out, "\"{}\"", super::json_escape(s));
            }
            ArgValue::Bool(b) => {
                let _ = write!(out, "{b}");
            }
        }
    }

    /// The value as it appears in the operator-tree text rendering.
    pub fn render_text(&self) -> String {
        match self {
            ArgValue::Int(v) => v.to_string(),
            ArgValue::UInt(v) => v.to_string(),
            ArgValue::Float(v) => format!("{v:.3}"),
            ArgValue::Str(s) => s.clone(),
            ArgValue::Bool(b) => b.to_string(),
        }
    }
}

/// Event phase, following the Chrome trace-event vocabulary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A span with a duration (`"ph": "X"`).
    Complete,
    /// A point in time (`"ph": "i"`).
    Instant,
}

/// One recorded trace event.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Event name (e.g. `match.search`, `refine.level`).
    pub name: String,
    /// Category, used by trace viewers to group/filter rows.
    pub cat: &'static str,
    /// Complete span or instant marker.
    pub kind: EventKind,
    /// Start time in nanoseconds since the sink's epoch.
    pub ts_ns: u64,
    /// Duration in nanoseconds (0 for instants).
    pub dur_ns: u64,
    /// Recording thread's sink-assigned id.
    pub tid: u64,
    /// Typed arguments shown in the viewer's detail pane.
    pub args: Vec<(&'static str, ArgValue)>,
}

/// Number of per-thread buffer shards. Worker pools here are sized by
/// core count; 16 shards keep same-shard collisions rare, and a
/// collision only costs brief mutex contention, never corruption.
const SHARDS: usize = 16;

static NEXT_THREAD_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static THREAD_ID: u64 = NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed);
}

/// A small integer id for the calling thread, stable for the thread's
/// lifetime and unique across the process (ids are assigned in first-use
/// order, so thread 1 is whichever thread traced first).
pub fn thread_id() -> u64 {
    THREAD_ID.with(|id| *id)
}

/// A per-query (or per-run) event collector with per-thread sharded
/// buffers. Share it via `Arc`; recording takes one uncontended mutex
/// push per event.
pub struct TraceSink {
    epoch: Instant,
    shards: Vec<Mutex<Vec<TraceEvent>>>,
}

impl fmt::Debug for TraceSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TraceSink({} events)", self.len())
    }
}

impl Default for TraceSink {
    fn default() -> Self {
        TraceSink {
            epoch: Instant::now(),
            shards: (0..SHARDS).map(|_| Mutex::new(Vec::new())).collect(),
        }
    }
}

impl TraceSink {
    /// A fresh sink behind an `Arc` (the shape every pipeline layer
    /// consumes). Its epoch — the zero of every event timestamp — is
    /// the moment of creation.
    pub fn new() -> Arc<TraceSink> {
        Arc::new(TraceSink::default())
    }

    /// Total events recorded so far.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("trace shard poisoned").len())
            .sum()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn push(&self, ev: TraceEvent) {
        let shard = (ev.tid as usize) % SHARDS;
        self.shards[shard]
            .lock()
            .expect("trace shard poisoned")
            .push(ev);
    }

    fn since_epoch(&self, t: Instant) -> u64 {
        u64::try_from(t.saturating_duration_since(self.epoch).as_nanos()).unwrap_or(u64::MAX)
    }

    /// Records a complete ("X") event that started at `start` and ends
    /// now.
    pub fn complete(
        &self,
        name: impl Into<String>,
        cat: &'static str,
        start: Instant,
        args: Vec<(&'static str, ArgValue)>,
    ) {
        let ts_ns = self.since_epoch(start);
        let dur_ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.push(TraceEvent {
            name: name.into(),
            cat,
            kind: EventKind::Complete,
            ts_ns,
            dur_ns,
            tid: thread_id(),
            args,
        });
    }

    /// Records an instant ("i") event at the current time.
    pub fn instant(
        &self,
        name: impl Into<String>,
        cat: &'static str,
        args: Vec<(&'static str, ArgValue)>,
    ) {
        self.push(TraceEvent {
            name: name.into(),
            cat,
            kind: EventKind::Instant,
            ts_ns: self.since_epoch(Instant::now()),
            dur_ns: 0,
            tid: thread_id(),
            args,
        });
    }

    /// Starts a span; the complete event is recorded when the returned
    /// guard drops. Attach arguments with [`TraceSpan::arg`].
    pub fn span(&self, name: impl Into<String>, cat: &'static str) -> TraceSpan<'_> {
        TraceSpan {
            sink: self,
            name: name.into(),
            cat,
            start: Instant::now(),
            args: Vec::new(),
        }
    }

    /// A merged, time-sorted snapshot of every recorded event (the
    /// buffers are left intact; export is an end-of-run operation).
    pub fn events(&self) -> Vec<TraceEvent> {
        let mut all: Vec<TraceEvent> = Vec::new();
        for shard in &self.shards {
            all.extend(shard.lock().expect("trace shard poisoned").iter().cloned());
        }
        all.sort_by_key(|e| (e.ts_ns, e.tid, e.dur_ns));
        all
    }

    /// Renders the whole sink as a Chrome trace-event JSON document
    /// (the object form: `{"traceEvents": [...]}`), loadable in
    /// Perfetto (<https://ui.perfetto.dev>) and `chrome://tracing`.
    /// Timestamps and durations are microseconds with nanosecond
    /// precision, as the format specifies.
    pub fn render_chrome_json(&self) -> String {
        let events = self.events();
        let mut s = String::from(
            "{\n\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [\n\
             {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 0, \"tid\": 0, \
             \"args\": {\"name\": \"gql\"}}",
        );
        for e in &events {
            s.push_str(",\n");
            let _ = write!(
                s,
                "{{\"name\": \"{}\", \"cat\": \"{}\", \"ph\": \"{}\", \"pid\": 0, \
                 \"tid\": {}, \"ts\": {}.{:03}",
                super::json_escape(&e.name),
                super::json_escape(e.cat),
                match e.kind {
                    EventKind::Complete => "X",
                    EventKind::Instant => "i",
                },
                e.tid,
                e.ts_ns / 1000,
                e.ts_ns % 1000,
            );
            if e.kind == EventKind::Complete {
                let _ = write!(s, ", \"dur\": {}.{:03}", e.dur_ns / 1000, e.dur_ns % 1000);
            } else {
                s.push_str(", \"s\": \"t\"");
            }
            if !e.args.is_empty() {
                s.push_str(", \"args\": {");
                for (i, (k, v)) in e.args.iter().enumerate() {
                    if i > 0 {
                        s.push_str(", ");
                    }
                    let _ = write!(s, "\"{}\": ", super::json_escape(k));
                    v.render_json(&mut s);
                }
                s.push('}');
            }
            s.push('}');
        }
        s.push_str("\n]\n}\n");
        s
    }
}

/// An in-flight trace span; records a complete event into the sink on
/// drop.
pub struct TraceSpan<'a> {
    sink: &'a TraceSink,
    name: String,
    cat: &'static str,
    start: Instant,
    args: Vec<(&'static str, ArgValue)>,
}

impl TraceSpan<'_> {
    /// Attaches a typed argument to the event recorded at drop.
    pub fn arg(&mut self, key: &'static str, value: ArgValue) {
        self.args.push((key, value));
    }
}

impl Drop for TraceSpan<'_> {
    fn drop(&mut self) {
        let ts_ns = self.sink.since_epoch(self.start);
        let dur_ns = u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.sink.push(TraceEvent {
            name: std::mem::take(&mut self.name),
            cat: self.cat,
            kind: EventKind::Complete,
            ts_ns,
            dur_ns,
            tid: thread_id(),
            args: std::mem::take(&mut self.args),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::json::validate_json;

    #[test]
    fn spans_and_instants_record_events() {
        let sink = TraceSink::new();
        {
            let mut span = sink.span("phase.a", "match");
            span.arg("candidates", ArgValue::UInt(10));
            span.arg("ratio", ArgValue::Float(0.5));
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        sink.instant("marker", "engine", vec![("node", ArgValue::Int(3))]);
        sink.complete(
            "phase.b",
            "match",
            Instant::now(),
            vec![("label", ArgValue::Str("A\"B".into()))],
        );
        assert_eq!(sink.len(), 3);
        let events = sink.events();
        // Sorted by timestamp: the span started first.
        assert_eq!(events[0].name, "phase.a");
        assert!(events[0].dur_ns >= 1_000_000, "{:?}", events[0]);
        assert_eq!(events[0].args[0], ("candidates", ArgValue::UInt(10)));
        let json = sink.render_chrome_json();
        validate_json(&json).expect("chrome trace must be well-formed JSON");
        assert!(json.contains("\"traceEvents\""), "{json}");
        assert!(json.contains("\"ph\": \"X\""), "{json}");
        assert!(json.contains("\"ph\": \"i\""), "{json}");
        assert!(json.contains("\"A\\\"B\""), "{json}");
    }

    #[test]
    fn concurrent_recording_keeps_every_event_with_distinct_tids() {
        let sink = TraceSink::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                let sink = Arc::clone(&sink);
                s.spawn(move || {
                    for i in 0..100u64 {
                        sink.instant("tick", "test", vec![("i", ArgValue::UInt(i))]);
                    }
                });
            }
        });
        assert_eq!(sink.len(), 800);
        let tids: std::collections::BTreeSet<u64> = sink.events().iter().map(|e| e.tid).collect();
        assert_eq!(tids.len(), 8, "each worker gets its own thread id");
        validate_json(&sink.render_chrome_json()).unwrap();
    }

    #[test]
    fn empty_sink_renders_metadata_only() {
        let sink = TraceSink::new();
        assert!(sink.is_empty());
        let json = sink.render_chrome_json();
        validate_json(&json).unwrap();
        assert!(json.contains("process_name"), "{json}");
    }

    #[test]
    fn nonfinite_floats_render_as_strings() {
        let sink = TraceSink::new();
        sink.instant("x", "t", vec![("nan", ArgValue::Float(f64::NAN))]);
        let json = sink.render_chrome_json();
        validate_json(&json).expect("NaN must not leak as a bare literal");
        assert!(json.contains("\"NaN\""), "{json}");
    }
}
