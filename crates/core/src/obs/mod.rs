//! Pipeline observability: a zero-dependency metrics registry.
//!
//! The paper's whole §5 evaluation is per-phase instrumentation —
//! pruning power of profiles vs. refinement, search-space ratios,
//! per-phase wall-clock — and a production deployment needs the same
//! visibility. This module provides the substrate: an [`Obs`] registry
//! of named **atomic counters** and **duration histograms**, cheap
//! enough to leave compiled into every pipeline layer.
//!
//! Design rules:
//!
//! - **Disabled means free.** Pipeline code holds an
//!   `Option<Arc<Obs>>`; when it is `None` the instrumentation is a
//!   skipped branch. Hot kernels never consult the registry per
//!   element — they keep local integer counts (as they always did) and
//!   flush aggregates once per phase.
//! - **Deterministic counters.** Counters record logical quantities
//!   (candidates pruned, search steps, pairs removed), so for
//!   deterministic workloads the counter snapshot is byte-identical at
//!   any `--threads` setting. Histograms record wall-clock and are
//!   explicitly excluded from determinism comparisons.
//! - **Std-only.** `Mutex<BTreeMap>` name table (names are touched once
//!   per phase, not per element) with `AtomicU64` cells behind `Arc`,
//!   so recording never holds the table lock.
//!
//! ```
//! use gql_core::obs::Obs;
//! use std::time::Duration;
//!
//! let obs = Obs::new();
//! obs.add("search.steps", 42);
//! obs.record("phase.search", Duration::from_micros(7));
//! let report = obs.report();
//! assert_eq!(report.counter("search.steps"), Some(42));
//! assert!(report.render_json().contains("\"search.steps\": 42"));
//! ```

pub mod explain;
pub mod json;
pub mod prom;
pub mod trace;

use std::collections::BTreeMap;
use std::fmt;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// A monotone atomic counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value gauge (WAL size, live segment bytes): unlike
/// [`Counter`] it moves in both directions, so snapshots report the
/// current level rather than a monotone total. Gauges describe ambient
/// state, not per-query work — determinism comparisons look only at
/// counters.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Replaces the gauge value.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A thread-safe duration accumulator: count, total, min, max.
///
/// (A full log-bucketed histogram adds nothing for per-phase spans that
/// fire once per query; min/max/total keep the report small and the
/// recording path to four atomic RMWs.)
#[derive(Debug)]
pub struct DurationStat {
    count: AtomicU64,
    total_ns: AtomicU64,
    min_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl Default for DurationStat {
    fn default() -> Self {
        DurationStat {
            count: AtomicU64::new(0),
            total_ns: AtomicU64::new(0),
            min_ns: AtomicU64::new(u64::MAX),
            max_ns: AtomicU64::new(0),
        }
    }
}

impl DurationStat {
    /// Records one duration.
    pub fn record(&self, d: Duration) {
        let ns = u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_ns.fetch_add(ns, Ordering::Relaxed);
        self.min_ns.fetch_min(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }
}

/// Immutable snapshot of one [`DurationStat`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseStats {
    /// Spans recorded.
    pub count: u64,
    /// Sum of all spans.
    pub total: Duration,
    /// Shortest span ([`Duration::ZERO`] when `count == 0`).
    pub min: Duration,
    /// Longest span.
    pub max: Duration,
}

impl PhaseStats {
    /// Mean span duration (zero when nothing was recorded).
    ///
    /// Computed in u128 nanoseconds: `total / count` stays exact for
    /// any span count (a `u32` divisor would silently divide by the
    /// wrong count past 2^32 spans).
    pub fn mean(&self) -> Duration {
        if self.count == 0 {
            Duration::ZERO
        } else {
            let ns = self.total.as_nanos() / u128::from(self.count);
            Duration::from_nanos(u64::try_from(ns).unwrap_or(u64::MAX))
        }
    }
}

/// An in-flight phase span; records its elapsed time into the owning
/// stat on drop.
pub struct Span {
    stat: Arc<DurationStat>,
    start: Instant,
}

impl Drop for Span {
    fn drop(&mut self) {
        self.stat.record(self.start.elapsed());
    }
}

/// The metrics registry: named counters and duration stats.
///
/// Cloning the `Arc<Obs>` shares the registry; [`Obs::report`] takes a
/// consistent-enough snapshot for end-of-query reporting (individual
/// cells are read atomically).
#[derive(Default)]
pub struct Obs {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    phases: Mutex<BTreeMap<String, Arc<DurationStat>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
}

impl fmt::Debug for Obs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let nc = self.counters.lock().map(|c| c.len()).unwrap_or(0);
        let np = self.phases.lock().map(|p| p.len()).unwrap_or(0);
        let ng = self.gauges.lock().map(|g| g.len()).unwrap_or(0);
        write!(f, "Obs({nc} counters, {np} phases, {ng} gauges)")
    }
}

impl Obs {
    /// A fresh, empty registry behind an `Arc` (the shape every pipeline
    /// layer consumes).
    pub fn new() -> Arc<Obs> {
        Arc::new(Obs::default())
    }

    /// The counter named `name`, created on first use. Cache the handle
    /// when recording repeatedly.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock().expect("obs counters poisoned");
        Arc::clone(
            map.entry(name.to_string())
                .or_insert_with(|| Arc::new(Counter::default())),
        )
    }

    /// The duration stat named `name`, created on first use.
    pub fn phase(&self, name: &str) -> Arc<DurationStat> {
        let mut map = self.phases.lock().expect("obs phases poisoned");
        Arc::clone(
            map.entry(name.to_string())
                .or_insert_with(|| Arc::new(DurationStat::default())),
        )
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.gauges.lock().expect("obs gauges poisoned");
        Arc::clone(
            map.entry(name.to_string())
                .or_insert_with(|| Arc::new(Gauge::default())),
        )
    }

    /// Adds `n` to counter `name`.
    pub fn add(&self, name: &str, n: u64) {
        self.counter(name).add(n);
    }

    /// Sets gauge `name` to `v`.
    pub fn set_gauge(&self, name: &str, v: u64) {
        self.gauge(name).set(v);
    }

    /// Records `d` into duration stat `name`.
    pub fn record(&self, name: &str, d: Duration) {
        self.phase(name).record(d);
    }

    /// Starts a span over phase `name`; the elapsed time is recorded
    /// when the returned guard drops.
    pub fn span(&self, name: &str) -> Span {
        Span {
            stat: self.phase(name),
            start: Instant::now(),
        }
    }

    /// Snapshot of every counter and phase.
    pub fn report(&self) -> ObsReport {
        let counters = self
            .counters
            .lock()
            .expect("obs counters poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let phases = self
            .phases
            .lock()
            .expect("obs phases poisoned")
            .iter()
            .map(|(k, v)| {
                let count = v.count.load(Ordering::Relaxed);
                (
                    k.clone(),
                    PhaseStats {
                        count,
                        total: Duration::from_nanos(v.total_ns.load(Ordering::Relaxed)),
                        min: if count == 0 {
                            Duration::ZERO
                        } else {
                            Duration::from_nanos(v.min_ns.load(Ordering::Relaxed))
                        },
                        max: Duration::from_nanos(v.max_ns.load(Ordering::Relaxed)),
                    },
                )
            })
            .collect();
        let gauges = self
            .gauges
            .lock()
            .expect("obs gauges poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        ObsReport {
            counters,
            phases,
            gauges,
        }
    }

    /// Clears every counter, phase, and gauge (the names are forgotten
    /// too, so the next report only contains metrics touched since the
    /// reset).
    pub fn reset(&self) {
        self.counters.lock().expect("obs counters poisoned").clear();
        self.phases.lock().expect("obs phases poisoned").clear();
        self.gauges.lock().expect("obs gauges poisoned").clear();
    }
}

/// A point-in-time snapshot of a registry, ready to print or serialize.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ObsReport {
    /// `(name, value)` pairs, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, stats)` pairs, sorted by name.
    pub phases: Vec<(String, PhaseStats)>,
    /// `(name, value)` gauge pairs, sorted by name. Gauges describe
    /// ambient state (file sizes, live bytes) and are excluded from
    /// determinism comparisons, which look only at `counters`.
    pub gauges: Vec<(String, u64)>,
}

/// JSON string escaping for metric names (ours are plain ASCII, but be
/// correct anyway).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

impl ObsReport {
    /// Value of counter `name`, if it was ever touched.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map(|&(_, v)| v)
    }

    /// Stats of phase `name`, if it was ever recorded.
    pub fn phase(&self, name: &str) -> Option<PhaseStats> {
        self.phases.iter().find(|(k, _)| k == name).map(|&(_, v)| v)
    }

    /// Value of gauge `name`, if it was ever set.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.iter().find(|(k, _)| k == name).map(|&(_, v)| v)
    }

    /// Human-readable per-phase breakdown (the `--profile` text form).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        if !self.phases.is_empty() {
            let _ = writeln!(
                out,
                "{:<28} {:>8} {:>12} {:>12} {:>12}",
                "phase", "count", "total", "mean", "max"
            );
            for (name, p) in &self.phases {
                let _ = writeln!(
                    out,
                    "{:<28} {:>8} {:>12} {:>12} {:>12}",
                    name,
                    p.count,
                    format!("{:.1?}", p.total),
                    format!("{:.1?}", p.mean()),
                    format!("{:.1?}", p.max),
                );
            }
        }
        if !self.counters.is_empty() {
            if !self.phases.is_empty() {
                out.push('\n');
            }
            let _ = writeln!(out, "{:<40} {:>14}", "counter", "value");
            for (name, v) in &self.counters {
                let _ = writeln!(out, "{name:<40} {v:>14}");
            }
        }
        if !self.gauges.is_empty() {
            if !out.is_empty() {
                out.push('\n');
            }
            let _ = writeln!(out, "{:<40} {:>14}", "gauge", "value");
            for (name, v) in &self.gauges {
                let _ = writeln!(out, "{name:<40} {v:>14}");
            }
        }
        if out.is_empty() {
            out.push_str("(no metrics recorded)\n");
        }
        out
    }

    /// Machine-readable JSON (`--profile=json`): an object with
    /// `counters` (name → integer) and `phases` (name → ns stats).
    pub fn render_json(&self) -> String {
        let mut s = String::from("{\n  \"counters\": {");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            let sep = if i == 0 { "\n" } else { ",\n" };
            let _ = write!(s, "{sep}    \"{}\": {v}", json_escape(name));
        }
        if !self.counters.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("},\n  \"phases\": {");
        for (i, (name, p)) in self.phases.iter().enumerate() {
            let sep = if i == 0 { "\n" } else { ",\n" };
            let _ = write!(
                s,
                "{sep}    \"{}\": {{\"count\": {}, \"total_ns\": {}, \"min_ns\": {}, \"max_ns\": {}}}",
                json_escape(name),
                p.count,
                p.total.as_nanos(),
                p.min.as_nanos(),
                p.max.as_nanos(),
            );
        }
        if !self.phases.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("},\n  \"gauges\": {");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            let sep = if i == 0 { "\n" } else { ",\n" };
            let _ = write!(s, "{sep}    \"{}\": {v}", json_escape(name));
        }
        if !self.gauges.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("}\n}\n");
        s
    }

    /// Prometheus text exposition (version 0.0.4), ready for a
    /// file-based scrape (`gql run --metrics FILE`) or the live
    /// `/metrics` endpoint. Each registry metric becomes its own
    /// sanitized family (`engine.index_cache.hits` →
    /// `gql_engine_index_cache_hits_total`, indexed spans like
    /// `search.chunk[0]` → an `index` label); see [`prom`] for the
    /// naming rules and the matching [`prom::validate_prometheus`]
    /// checker.
    pub fn render_prometheus(&self) -> String {
        prom::render(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let obs = Obs::new();
        obs.add("a", 1);
        obs.add("a", 2);
        obs.add("b", 5);
        let rep = obs.report();
        assert_eq!(rep.counter("a"), Some(3));
        assert_eq!(rep.counter("b"), Some(5));
        assert_eq!(rep.counter("missing"), None);
        obs.reset();
        assert!(obs.report().counters.is_empty());
    }

    #[test]
    fn spans_record_durations() {
        let obs = Obs::new();
        {
            let _s = obs.span("p");
            std::thread::sleep(Duration::from_millis(1));
        }
        obs.record("p", Duration::from_millis(2));
        let p = obs.report().phase("p").unwrap();
        assert_eq!(p.count, 2);
        assert!(p.total >= Duration::from_millis(3));
        assert!(p.min <= p.max);
        assert!(p.mean() >= p.min && p.mean() <= p.max);
    }

    #[test]
    fn concurrent_adds_are_exact() {
        let obs = Obs::new();
        let c = obs.counter("n");
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = Arc::clone(&c);
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.add(1);
                    }
                });
            }
        });
        assert_eq!(obs.report().counter("n"), Some(8000));
    }

    /// Regression: the mean used to be computed with a `u32` divisor
    /// (`total / u32::try_from(count).unwrap_or(u32::MAX)`), silently
    /// dividing by the wrong count once more than 2^32 spans were
    /// recorded. The u128-nanosecond computation stays exact.
    #[test]
    fn mean_is_exact_past_u32_span_counts() {
        let count = 1u64 << 34; // 4x past the clamp point
        let stats = PhaseStats {
            count,
            total: Duration::from_nanos(count * 3),
            min: Duration::from_nanos(3),
            max: Duration::from_nanos(3),
        };
        assert_eq!(stats.mean(), Duration::from_nanos(3));
        // The old clamped divisor would have reported ~4x the true mean.
        let wrong = stats.total / u32::MAX;
        assert!(wrong >= Duration::from_nanos(12), "{wrong:?}");
        // Small counts are unchanged.
        let small = PhaseStats {
            count: 4,
            total: Duration::from_nanos(10),
            min: Duration::from_nanos(1),
            max: Duration::from_nanos(4),
        };
        assert_eq!(small.mean(), Duration::from_nanos(2));
        let empty = PhaseStats {
            count: 0,
            total: Duration::ZERO,
            min: Duration::ZERO,
            max: Duration::ZERO,
        };
        assert_eq!(empty.mean(), Duration::ZERO);
    }

    /// Eight threads hammering one `DurationStat` and one `Counter`:
    /// the count and total must be exact, and the invariant
    /// min ≤ mean ≤ max must hold on the snapshot.
    #[test]
    fn concurrent_duration_recording_is_exact() {
        let obs = Obs::new();
        let stat = obs.phase("hammered");
        let counter = obs.counter("hits");
        const THREADS: u64 = 8;
        const PER_THREAD: u64 = 1000;
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let stat = Arc::clone(&stat);
                let counter = Arc::clone(&counter);
                s.spawn(move || {
                    for i in 0..PER_THREAD {
                        // Deterministic per-record duration: 1..=8000 ns.
                        stat.record(Duration::from_nanos(t * PER_THREAD + i + 1));
                        counter.add(1);
                    }
                });
            }
        });
        let rep = obs.report();
        assert_eq!(rep.counter("hits"), Some(THREADS * PER_THREAD));
        let p = rep.phase("hammered").unwrap();
        assert_eq!(p.count, THREADS * PER_THREAD);
        let n = THREADS * PER_THREAD;
        assert_eq!(p.total, Duration::from_nanos(n * (n + 1) / 2));
        assert_eq!(p.min, Duration::from_nanos(1));
        assert_eq!(p.max, Duration::from_nanos(n));
        assert!(p.min <= p.mean() && p.mean() <= p.max);
    }

    #[test]
    fn prometheus_exposition_renders() {
        let obs = Obs::new();
        obs.add("search.steps", 42);
        obs.set_gauge("storage.wal_size", 777);
        obs.record("match.search", Duration::from_millis(5));
        obs.record("match.search", Duration::from_millis(7));
        let text = obs.report().render_prometheus();
        prom::validate_prometheus(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
        assert!(text.contains("gql_search_steps_total 42"), "{text}");
        assert!(text.contains("gql_storage_wal_size 777"), "{text}");
        assert!(text.contains("gql_match_search_seconds_count 2"), "{text}");
        assert!(
            text.contains("gql_match_search_seconds_sum 0.012"),
            "{text}"
        );
        assert!(
            text.contains("# TYPE gql_search_steps_total counter"),
            "{text}"
        );
        assert!(
            text.contains("gql_match_search_seconds_min 0.005"),
            "{text}"
        );
        assert!(
            text.contains("gql_match_search_seconds_max 0.007"),
            "{text}"
        );
    }

    #[test]
    fn json_and_text_render() {
        let obs = Obs::new();
        obs.add("x.y", 7);
        obs.set_gauge("g.level", 12);
        obs.record("ph", Duration::from_nanos(500));
        let rep = obs.report();
        assert_eq!(rep.gauge("g.level"), Some(12));
        assert_eq!(rep.gauge("missing"), None);
        let json = rep.render_json();
        assert!(json.contains("\"x.y\": 7"), "{json}");
        assert!(json.contains("\"ph\": {\"count\": 1"), "{json}");
        assert!(json.contains("\"g.level\": 12"), "{json}");
        crate::validate_json(&json).unwrap();
        let text = rep.render_text();
        assert!(text.contains("x.y"), "{text}");
        assert!(text.contains("ph"), "{text}");
        assert!(text.contains("g.level"), "{text}");
        assert_eq!(json_escape("a\"b\\c\n"), "a\\\"b\\\\c\\u000a");
        // Empty report renders without panicking.
        assert!(ObsReport::default().render_json().contains("counters"));
        assert!(ObsReport::default()
            .render_text()
            .contains("no metrics recorded"));
    }
}
