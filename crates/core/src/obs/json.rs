//! A std-only JSON well-formedness checker.
//!
//! The observability layer emits JSON by hand (reports, explain trees,
//! Chrome trace files) because the workspace takes no third-party
//! dependencies. This module is the safety net: a recursive-descent
//! validator that tests run over every emitted document, so a missed
//! comma or an unescaped quote fails CI instead of breaking Perfetto.
//!
//! It checks *well-formedness* per RFC 8259 (grammar, string escapes,
//! number syntax, nesting depth), not schemas.
//!
//! ```
//! use gql_core::obs::json::validate_json;
//!
//! assert!(validate_json("{\"a\": [1, 2.5, null, \"x\\n\"]}").is_ok());
//! assert!(validate_json("{\"a\": }").is_err());
//! ```

/// Maximum nesting depth accepted before bailing out (guards the
/// validator's own recursion; our emitters never approach it).
const MAX_DEPTH: usize = 256;

/// Checks that `s` is a single well-formed JSON value (with nothing but
/// whitespace after it). Returns a human-readable description of the
/// first problem found, with its byte offset.
pub fn validate_json(s: &str) -> Result<(), String> {
    let bytes = s.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    value(bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing content at byte {pos}"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn value(b: &[u8], pos: &mut usize, depth: usize) -> Result<(), String> {
    if depth > MAX_DEPTH {
        return Err(format!("nesting deeper than {MAX_DEPTH} at byte {pos}"));
    }
    match b.get(*pos) {
        None => Err(format!("unexpected end of input at byte {pos}")),
        Some(b'{') => object(b, pos, depth),
        Some(b'[') => array(b, pos, depth),
        Some(b'"') => string(b, pos),
        Some(b't') => literal(b, pos, b"true"),
        Some(b'f') => literal(b, pos, b"false"),
        Some(b'n') => literal(b, pos, b"null"),
        Some(b'-') | Some(b'0'..=b'9') => number(b, pos),
        Some(c) => Err(format!(
            "unexpected byte {:?} at byte {pos}",
            char::from(*c)
        )),
    }
}

fn literal(b: &[u8], pos: &mut usize, lit: &[u8]) -> Result<(), String> {
    if b[*pos..].starts_with(lit) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("malformed literal at byte {pos}"))
    }
}

fn object(b: &[u8], pos: &mut usize, depth: usize) -> Result<(), String> {
    *pos += 1; // consume '{'
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key string at byte {pos}"));
        }
        string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}"));
        }
        *pos += 1;
        skip_ws(b, pos);
        value(b, pos, depth + 1)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

fn array(b: &[u8], pos: &mut usize, depth: usize) -> Result<(), String> {
    *pos += 1; // consume '['
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        value(b, pos, depth + 1)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn string(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // consume opening quote
    loop {
        match b.get(*pos) {
            None => return Err(format!("unterminated string at byte {pos}")),
            Some(b'"') => {
                *pos += 1;
                return Ok(());
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                    Some(b'u') => {
                        *pos += 1;
                        for _ in 0..4 {
                            match b.get(*pos) {
                                Some(c) if c.is_ascii_hexdigit() => *pos += 1,
                                _ => return Err(format!("bad \\u escape at byte {pos}")),
                            }
                        }
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
            }
            Some(c) if *c < 0x20 => {
                return Err(format!("unescaped control byte {c:#04x} at byte {pos}"))
            }
            Some(_) => *pos += 1,
        }
    }
}

fn number(b: &[u8], pos: &mut usize) -> Result<(), String> {
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    match b.get(*pos) {
        Some(b'0') => *pos += 1,
        Some(b'1'..=b'9') => {
            while matches!(b.get(*pos), Some(b'0'..=b'9')) {
                *pos += 1;
            }
        }
        _ => return Err(format!("malformed number at byte {pos}")),
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        if !matches!(b.get(*pos), Some(b'0'..=b'9')) {
            return Err(format!("digit required after '.' at byte {pos}"));
        }
        while matches!(b.get(*pos), Some(b'0'..=b'9')) {
            *pos += 1;
        }
    }
    if matches!(b.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if !matches!(b.get(*pos), Some(b'0'..=b'9')) {
            return Err(format!("digit required in exponent at byte {pos}"));
        }
        while matches!(b.get(*pos), Some(b'0'..=b'9')) {
            *pos += 1;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::validate_json;

    #[test]
    fn accepts_valid_documents() {
        for doc in [
            "null",
            "true",
            "-0.5e+10",
            "\"\"",
            "\"a\\u00e9\\n\"",
            "[]",
            "{}",
            "[1, [2, {\"k\": [3]}], \"s\"]",
            "  {\"a\": {\"b\": [true, false, null]}}  ",
            "{\"nested\": {\"deep\": {\"ok\": 1.25}}}",
        ] {
            validate_json(doc).unwrap_or_else(|e| panic!("{doc}: {e}"));
        }
    }

    #[test]
    fn rejects_malformed_documents() {
        for doc in [
            "",
            "{",
            "}",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "{a: 1}",
            "\"unterminated",
            "\"bad \\x escape\"",
            "\"ctrl \u{0}\"",
            "01",
            "1.",
            "1e",
            "nul",
            "[1] trailing",
            "NaN",
        ] {
            assert!(validate_json(doc).is_err(), "should reject: {doc:?}");
        }
    }

    #[test]
    fn rejects_pathological_nesting() {
        let deep = "[".repeat(10_000) + &"]".repeat(10_000);
        assert!(validate_json(&deep).is_err());
    }
}
