//! Error types for the core data model.

use std::fmt;

/// Errors raised by graph construction and manipulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// An edge endpoint referenced a node id beyond the graph's node count.
    NodeOutOfRange {
        /// Offending node index.
        node: usize,
        /// Current node count.
        count: usize,
    },
    /// Self-loops are not part of the paper's simple-graph model.
    SelfLoop {
        /// The node that was both endpoints.
        node: usize,
    },
    /// The edge already exists (simple graphs only).
    DuplicateEdge {
        /// Source index.
        src: usize,
        /// Destination index.
        dst: usize,
    },
    /// A named entity (node/edge/graph) was not found.
    NameNotFound {
        /// The missing name.
        name: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::NodeOutOfRange { node, count } => {
                write!(
                    f,
                    "node index {node} out of range (graph has {count} nodes)"
                )
            }
            CoreError::SelfLoop { node } => {
                write!(
                    f,
                    "self-loop on node {node} is not allowed in a simple graph"
                )
            }
            CoreError::DuplicateEdge { src, dst } => {
                write!(f, "edge ({src}, {dst}) already exists")
            }
            CoreError::NameNotFound { name } => write!(f, "no entity named {name:?}"),
        }
    }
}

impl std::error::Error for CoreError {}

/// Convenience alias used throughout the core crate.
pub type Result<T> = std::result::Result<T, CoreError>;
