//! Sorted secondary property indexes (ROADMAP item 5).
//!
//! The paper's access methods prune by structure (profiles, refinement);
//! attribute predicates still scan the label bucket per candidate. This
//! module adds the missing value axis: for every `(label, attribute)`
//! pair seen in the data graph, a [`Run`] holds `(Value, id)` entries
//! sorted by the total [`Value`] order with ids as tie-break, so an
//! equality or range predicate resolves in `O(log n + k)` instead of
//! `O(bucket)`.
//!
//! Correctness contract with the scan path (`feasible::retrieve`):
//!
//! - **Equality**: `Value::eq` is `compare() == Some(Equal)`, and within
//!   an equal `Ord` range every pair is comparable (each `Ord` rank —
//!   bools, numerics, strings — is internally total), so the binary
//!   equal-range *is* the scan's equality set: no post-filter.
//! - **Ranges**: `compare()` returns `None` across ranks (`1 < "a"` is
//!   undefined, so a scan rejects it); the `Ord` partition bound is
//!   therefore a superset and each entry is re-checked with `compare()`
//!   before it is admitted, which drops cross-rank values exactly like
//!   the scan's `Undefined` verdict does.
//! - **Missing attribute**: a node without the attribute never enters
//!   the run, and a scan rejects it (`Undefined`); if *no* node of the
//!   label carries the attribute the run is absent and the empty result
//!   is the correct short-circuit.
//!
//! Probe results come back ascending by id — the same order as the
//! label bucket — so downstream candidate lists are byte-identical to
//! the scan path's.

use crate::graph::Graph;
use crate::intern::NO_LABEL;
use crate::op::BinOp;
use crate::value::Value;
use rustc_hash::FxHashMap;
use std::cmp::Ordering;

/// Predicate shapes a sorted run can answer. `!=` is deliberately
/// absent: its answer is the bucket minus a probe, which is no cheaper
/// than the scan and would complicate the equivalence argument.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeOp {
    /// `attr == key`
    Eq,
    /// `attr < key`
    Lt,
    /// `attr <= key`
    Le,
    /// `attr > key`
    Gt,
    /// `attr >= key`
    Ge,
}

impl ProbeOp {
    /// Maps an expression operator onto a probe, `None` for operators a
    /// sorted run cannot answer (`!=`, logical and arithmetic ops).
    pub fn from_binop(op: BinOp) -> Option<ProbeOp> {
        match op {
            BinOp::Eq => Some(ProbeOp::Eq),
            BinOp::Lt => Some(ProbeOp::Lt),
            BinOp::Le => Some(ProbeOp::Le),
            BinOp::Gt => Some(ProbeOp::Gt),
            BinOp::Ge => Some(ProbeOp::Ge),
            _ => None,
        }
    }

    /// Mirror for the `literal op attr` orientation: `5 < attr` is
    /// `attr > 5`.
    pub fn flip(self) -> ProbeOp {
        match self {
            ProbeOp::Eq => ProbeOp::Eq,
            ProbeOp::Lt => ProbeOp::Gt,
            ProbeOp::Le => ProbeOp::Ge,
            ProbeOp::Gt => ProbeOp::Lt,
            ProbeOp::Ge => ProbeOp::Le,
        }
    }

    /// Whether a `value.compare(key)` verdict satisfies this operator —
    /// the exact predicate the scan path evaluates.
    #[inline]
    fn admits(self, ord: Ordering) -> bool {
        match self {
            ProbeOp::Eq => ord == Ordering::Equal,
            ProbeOp::Lt => ord == Ordering::Less,
            ProbeOp::Le => ord != Ordering::Greater,
            ProbeOp::Gt => ord == Ordering::Greater,
            ProbeOp::Ge => ord != Ordering::Less,
        }
    }
}

/// One sorted run for a `(label, attribute)` pair, stored
/// structure-of-arrays: the sorted keys and a parallel id slab. The
/// split keeps binary-search probes touching only the key column, and
/// the id column rides the owned-or-mapped [`Slab`] substrate the rest
/// of the read path uses (`Value` keys are heap-structured and stay
/// owned).
#[derive(Debug, Clone, Default)]
pub struct Run {
    /// Sorted by `Value::cmp` (ties grouped; ids break ties ascending).
    keys: Vec<Value>,
    /// `ids[i]` is the node or edge index carrying `keys[i]`.
    ids: crate::slab::Slab<u32>,
    /// Number of `Ord`-distinct values, for selectivity estimates.
    distinct: u32,
}

impl Run {
    /// Freezes raw `(value, id)` pairs into a sorted run. Public so
    /// property tests can exercise probes against a scan oracle without
    /// building a whole graph.
    pub fn build(mut entries: Vec<(Value, u32)>) -> Self {
        entries.sort_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
        let distinct = entries
            .windows(2)
            .filter(|w| w[0].0.cmp(&w[1].0) != Ordering::Equal)
            .count() as u32
            + u32::from(!entries.is_empty());
        let mut keys = Vec::with_capacity(entries.len());
        let mut ids = Vec::with_capacity(entries.len());
        for (v, id) in entries {
            keys.push(v);
            ids.push(id);
        }
        Run {
            keys,
            ids: ids.into(),
            distinct,
        }
    }

    /// Number of indexed `(value, id)` entries.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True when no entry was indexed.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Number of `Ord`-distinct values in the run.
    pub fn distinct(&self) -> u32 {
        self.distinct
    }

    /// Ids whose value satisfies `op` against `key`, ascending by id.
    ///
    /// Equality takes the binary equal-range directly (ids already
    /// ascend there thanks to the id tie-break). Ranges take the `Ord`
    /// partition bound — a superset across type ranks — then re-check
    /// each entry with [`Value::compare`] so incomparable values are
    /// rejected exactly as the scan's `Undefined` verdict rejects them.
    pub fn probe(&self, op: ProbeOp, key: &Value) -> Vec<u32> {
        let lo = || self.keys.partition_point(|v| v.cmp(key) == Ordering::Less);
        let hi = || {
            self.keys
                .partition_point(|v| v.cmp(key) != Ordering::Greater)
        };
        let range = match op {
            ProbeOp::Eq => {
                // Ord-Equal implies compare() == Equal (ranks are
                // internally total), so the equal-range needs no filter.
                return self.ids[lo()..hi()].to_vec();
            }
            ProbeOp::Lt | ProbeOp::Le => 0..if op == ProbeOp::Lt { lo() } else { hi() },
            ProbeOp::Gt | ProbeOp::Ge => (if op == ProbeOp::Gt { hi() } else { lo() })..self.len(),
        };
        let mut ids: Vec<u32> = self.keys[range.clone()]
            .iter()
            .zip(&self.ids[range])
            .filter(|(v, _)| v.compare(key).is_some_and(|ord| op.admits(ord)))
            .map(|(_, &id)| id)
            .collect();
        ids.sort_unstable();
        ids
    }
}

/// Secondary property indexes for one data graph: a sorted [`Run`] per
/// `(label id, attribute name)` over nodes and over edges.
///
/// Built at `GraphIndex` construction from the label-id tables the index
/// already computed, and invalidated with it (the engine drops the whole
/// index on mutation), so a run can never outlive the graph version it
/// describes.
#[derive(Debug, Clone, Default)]
pub struct PropIndex {
    node_runs: FxHashMap<u32, FxHashMap<String, Run>>,
    edge_runs: FxHashMap<u32, FxHashMap<String, Run>>,
    node_entries: u64,
    edge_entries: u64,
}

impl PropIndex {
    /// Builds runs for every labeled node and edge. All attributes are
    /// indexed, including `label` itself — the absent-run short-circuit
    /// (`no run ⇒ no node of the label carries the attribute ⇒ empty`)
    /// is only sound if runs cover *every* attribute.
    pub fn build(g: &Graph, node_label_ids: &[u32], edge_label_ids: &[u32]) -> Self {
        let mut node_acc: FxHashMap<u32, FxHashMap<String, Vec<(Value, u32)>>> =
            FxHashMap::default();
        for (id, n) in g.nodes() {
            let lid = node_label_ids[id.index()];
            if lid == NO_LABEL {
                continue;
            }
            let per_label = node_acc.entry(lid).or_default();
            for (name, value) in n.attrs.iter() {
                per_label
                    .entry(name.to_string())
                    .or_default()
                    .push((value.clone(), id.0));
            }
        }
        let mut edge_acc: FxHashMap<u32, FxHashMap<String, Vec<(Value, u32)>>> =
            FxHashMap::default();
        for (id, e) in g.edges() {
            let lid = edge_label_ids[id.index()];
            if lid == NO_LABEL {
                continue;
            }
            let per_label = edge_acc.entry(lid).or_default();
            for (name, value) in e.attrs.iter() {
                per_label
                    .entry(name.to_string())
                    .or_default()
                    .push((value.clone(), id.0));
            }
        }
        let freeze = |acc: FxHashMap<u32, FxHashMap<String, Vec<(Value, u32)>>>| {
            let mut total = 0u64;
            let runs = acc
                .into_iter()
                .map(|(lid, attrs)| {
                    let frozen: FxHashMap<String, Run> = attrs
                        .into_iter()
                        .map(|(name, entries)| {
                            total += entries.len() as u64;
                            (name, Run::build(entries))
                        })
                        .collect();
                    (lid, frozen)
                })
                .collect();
            (runs, total)
        };
        let (node_runs, node_entries) = freeze(node_acc);
        let (edge_runs, edge_entries) = freeze(edge_acc);
        PropIndex {
            node_runs,
            edge_runs,
            node_entries,
            edge_entries,
        }
    }

    /// The run for nodes of `label` on `attr`, if any node has it.
    pub fn node_run(&self, label: u32, attr: &str) -> Option<&Run> {
        self.node_runs.get(&label)?.get(attr)
    }

    /// The run for edges of `label` on `attr`, if any edge has it.
    pub fn edge_run(&self, label: u32, attr: &str) -> Option<&Run> {
        self.edge_runs.get(&label)?.get(attr)
    }

    /// Node ids of `label` whose `attr` satisfies `op key`, ascending.
    /// `None` when the label has indexed runs but none for `attr` —
    /// which proves no node of the label carries the attribute, so the
    /// caller may short-circuit to the empty candidate set — or when the
    /// label itself indexed nothing (empty bucket).
    pub fn probe_nodes(
        &self,
        label: u32,
        attr: &str,
        op: ProbeOp,
        key: &Value,
    ) -> Option<Vec<u32>> {
        Some(self.node_run(label, attr)?.probe(op, key))
    }

    /// Edge analogue of [`PropIndex::probe_nodes`].
    pub fn probe_edges(
        &self,
        label: u32,
        attr: &str,
        op: ProbeOp,
        key: &Value,
    ) -> Option<Vec<u32>> {
        Some(self.edge_run(label, attr)?.probe(op, key))
    }

    /// Total `(value, id)` entries across node runs.
    pub fn node_entry_count(&self) -> u64 {
        self.node_entries
    }

    /// Total `(value, id)` entries across edge runs.
    pub fn edge_entry_count(&self) -> u64 {
        self.edge_entries
    }

    /// Iterates `(label id, attr, run)` over node runs, for statistics.
    pub fn node_run_summaries(&self) -> impl Iterator<Item = (u32, &str, &Run)> {
        self.node_runs.iter().flat_map(|(&lid, attrs)| {
            attrs
                .iter()
                .map(move |(name, run)| (lid, name.as_str(), run))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intern::LabelInterner;
    use crate::tuple::Tuple;

    /// Scan-path oracle: ids of labeled nodes whose `attr` satisfies the
    /// predicate under `Value::compare`, exactly as `EvalCtx` would.
    fn scan_nodes(
        g: &Graph,
        lids: &[u32],
        label: u32,
        attr: &str,
        op: ProbeOp,
        key: &Value,
    ) -> Vec<u32> {
        g.nodes()
            .filter(|(id, _)| lids[id.index()] == label)
            .filter(|(_, n)| match op {
                // The scan's == is Value::eq (compare() == Equal).
                ProbeOp::Eq => n.attrs.get(attr) == Some(key),
                _ => n
                    .attrs
                    .get(attr)
                    .and_then(|v| v.compare(key))
                    .is_some_and(|ord| op.admits(ord)),
            })
            .map(|(id, _)| id.0)
            .collect()
    }

    fn label_ids(g: &Graph) -> (Vec<u32>, LabelInterner) {
        let mut interner = LabelInterner::new();
        let ids = g
            .nodes()
            .map(|(_, n)| match n.attrs.get("label") {
                Some(l) => interner.intern(l),
                None => NO_LABEL,
            })
            .collect();
        (ids, interner)
    }

    fn mixed_graph() -> Graph {
        let mut g = Graph::new();
        const P53: i64 = 1 << 53;
        let years: Vec<Value> = vec![
            Value::Int(1999),
            Value::Float(1999.0),
            Value::Int(2005),
            Value::Float(2004.5),
            Value::Int(P53),
            Value::Int(P53 + 1),
            Value::Float(P53 as f64),
            Value::Float(f64::NAN),
            Value::Float(f64::INFINITY),
            Value::Str("1999".into()),
            Value::Bool(true),
            Value::Int(-3),
            Value::Float(-3.5),
        ];
        for (i, y) in years.into_iter().enumerate() {
            let label = if i % 3 == 0 { "A" } else { "B" };
            g.add_node(Tuple::new().with("label", label).with("year", y));
        }
        // A node missing the attribute entirely, and an unlabeled node.
        g.add_node(Tuple::new().with("label", "A"));
        g.add_node(Tuple::new().with("year", 2005));
        g
    }

    #[test]
    fn probes_match_scan_for_all_ops_and_mixed_keys() {
        let g = mixed_graph();
        let (lids, interner) = label_ids(&g);
        let pi = PropIndex::build(&g, &lids, &[]);
        const P53: i64 = 1 << 53;
        let keys = [
            Value::Int(1999),
            Value::Float(1999.0),
            Value::Int(P53),
            Value::Int(P53 + 1),
            Value::Float(P53 as f64),
            Value::Float(2004.75),
            Value::Str("1999".into()),
            Value::Bool(true),
            Value::Float(f64::NAN),
            Value::Int(-4),
        ];
        for label in ["A", "B"] {
            let lid = interner.lookup(&Value::Str(label.into())).unwrap();
            for key in &keys {
                for op in [
                    ProbeOp::Eq,
                    ProbeOp::Lt,
                    ProbeOp::Le,
                    ProbeOp::Gt,
                    ProbeOp::Ge,
                ] {
                    let probed = pi.probe_nodes(lid, "year", op, key).unwrap();
                    let scanned = scan_nodes(&g, &lids, lid, "year", op, key);
                    assert_eq!(probed, scanned, "label={label} op={op:?} key={key}");
                }
            }
        }
    }

    #[test]
    fn absent_run_means_no_node_has_the_attribute() {
        let g = mixed_graph();
        let (lids, interner) = label_ids(&g);
        let pi = PropIndex::build(&g, &lids, &[]);
        let lid = interner.lookup(&Value::Str("A".into())).unwrap();
        assert!(pi.node_run(lid, "year").is_some());
        assert!(pi.node_run(lid, "missing").is_none());
        assert!(scan_nodes(&g, &lids, lid, "missing", ProbeOp::Eq, &Value::Int(1)).is_empty());
        // The label attribute itself is indexed, so label predicates
        // resolve through the same runs.
        let run = pi.node_run(lid, "label").unwrap();
        assert_eq!(run.distinct(), 1);
        assert_eq!(
            pi.probe_nodes(lid, "label", ProbeOp::Eq, &Value::Str("A".into()))
                .unwrap(),
            scan_nodes(
                &g,
                &lids,
                lid,
                "label",
                ProbeOp::Eq,
                &Value::Str("A".into())
            )
        );
    }

    #[test]
    fn eq_range_ids_ascend_and_distinct_counts_ord_classes() {
        let mut g = Graph::new();
        for v in [5i64, 3, 5, 3, 5] {
            g.add_node(Tuple::new().with("label", "X").with("k", v));
        }
        // Float(3.0) is Ord-equal to Int(3): one distinct class.
        g.add_node(Tuple::new().with("label", "X").with("k", 3.0));
        let (lids, interner) = label_ids(&g);
        let pi = PropIndex::build(&g, &lids, &[]);
        let lid = interner.lookup(&Value::Str("X".into())).unwrap();
        let run = pi.node_run(lid, "k").unwrap();
        assert_eq!(run.len(), 6);
        assert_eq!(run.distinct(), 2);
        assert_eq!(run.probe(ProbeOp::Eq, &Value::Int(3)), vec![1, 3, 5]);
        assert_eq!(run.probe(ProbeOp::Eq, &Value::Float(3.0)), vec![1, 3, 5]);
        assert_eq!(
            run.probe(ProbeOp::Ge, &Value::Int(3)),
            vec![0, 1, 2, 3, 4, 5]
        );
        assert_eq!(run.probe(ProbeOp::Gt, &Value::Int(3)), vec![0, 2, 4]);
    }

    #[test]
    fn edge_runs_probe_by_edge_label() {
        let mut g = Graph::new();
        let a = g.add_node(Tuple::new().with("label", "N"));
        let b = g.add_node(Tuple::new().with("label", "N"));
        let c = g.add_node(Tuple::new().with("label", "N"));
        g.add_edge(a, b, Tuple::new().with("label", "E").with("w", 1))
            .unwrap();
        g.add_edge(b, c, Tuple::new().with("label", "E").with("w", 7))
            .unwrap();
        g.add_edge(a, c, Tuple::new().with("w", 9)).unwrap(); // unlabeled: unindexed
        let mut interner = LabelInterner::new();
        let elids: Vec<u32> = g
            .edges()
            .map(|(_, e)| match e.attrs.get("label") {
                Some(l) => interner.intern(l),
                None => NO_LABEL,
            })
            .collect();
        let pi = PropIndex::build(&g, &[NO_LABEL; 3], &elids);
        let lid = interner.lookup(&Value::Str("E".into())).unwrap();
        assert_eq!(
            pi.probe_edges(lid, "w", ProbeOp::Gt, &Value::Int(2)),
            Some(vec![1])
        );
        assert_eq!(
            pi.probe_edges(lid, "w", ProbeOp::Le, &Value::Int(7)),
            Some(vec![0, 1])
        );
        assert_eq!(pi.edge_entry_count(), 4); // label + w for two edges
    }
}
