//! Neighborhood subgraphs and profiles (paper §4.2, Definition 4.10).
//!
//! "Given graph G, node v and radius r, the neighborhood subgraph of node
//! v consists of all nodes within distance r (number of hops) from v and
//! all edges between the nodes." Profiles are their light-weight
//! summaries: "a sequence of the node labels in lexicographic order",
//! pruned with a subsequence test.

use crate::graph::{Graph, NodeId};
use crate::value::Value;
use std::collections::VecDeque;

/// A neighborhood subgraph: the induced subgraph on all nodes within
/// `radius` hops of `center`, plus the center's new id inside it.
#[derive(Debug, Clone)]
pub struct NeighborhoodSubgraph {
    /// The induced subgraph.
    pub graph: Graph,
    /// Where the original center node landed in `graph`.
    pub center: NodeId,
    /// The radius used for extraction.
    pub radius: usize,
}

/// Extracts the radius-`r` neighborhood subgraph of `v`.
///
/// BFS collects the ball of radius `r` — hops follow edges in *either*
/// direction, so on directed graphs predecessors are part of the
/// neighborhood too (Definition 4.10 counts hops, not orientations) —
/// then the subgraph induced on it (all edges of `g` between collected
/// nodes) is materialized, preserving the source graph's directedness.
/// With `r = 0` this degenerates to the single node, matching the
/// paper's remark that radius-0 neighborhoods are just nodes.
pub fn neighborhood_subgraph(g: &Graph, v: NodeId, radius: usize) -> NeighborhoodSubgraph {
    let mut dist = vec![usize::MAX; g.node_count()];
    let mut order: Vec<NodeId> = Vec::new();
    let mut queue = VecDeque::new();
    dist[v.index()] = 0;
    queue.push_back(v);
    while let Some(u) = queue.pop_front() {
        order.push(u);
        if dist[u.index()] == radius {
            continue;
        }
        for (w, _) in g.incident(u) {
            if dist[w.index()] == usize::MAX {
                dist[w.index()] = dist[u.index()] + 1;
                queue.push_back(w);
            }
        }
    }

    let mut sub = if g.is_directed() {
        Graph::new_directed()
    } else {
        Graph::new()
    };
    let mut map = vec![NodeId(u32::MAX); g.node_count()];
    for &u in &order {
        map[u.index()] = sub.add_node(g.node(u).attrs.clone());
    }
    for &u in &order {
        for &(w, e) in g.neighbors(u) {
            // Each directed edge appears once in its source's out-list;
            // each undirected edge twice, kept only when u < w.
            if dist[w.index()] != usize::MAX && (g.is_directed() || u < w) {
                let _ = sub.add_edge(map[u.index()], map[w.index()], g.edge(e).attrs.clone());
            }
        }
    }
    NeighborhoodSubgraph {
        graph: sub,
        center: map[v.index()],
        radius,
    }
}

/// A profile: the multiset of node labels in a neighborhood, kept sorted.
///
/// The pruning condition is multiset containment: pattern-node profile ⊆
/// data-node profile ("whether a profile is a subsequence of the other").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Profile {
    labels: Vec<Value>,
}

impl Profile {
    /// Builds a profile from any label iterator.
    pub fn from_labels<I: IntoIterator<Item = Value>>(labels: I) -> Self {
        let mut labels: Vec<Value> = labels.into_iter().collect();
        labels.sort();
        Profile { labels }
    }

    /// The profile of the radius-`r` neighborhood of `v` in `g`: sorted
    /// labels of every node in the ball (center included). Hops follow
    /// edges in either direction, so on directed graphs predecessor
    /// labels are included — dropping them would let the §4.2
    /// subsequence test prune valid candidates whose required labels
    /// arrive over in-edges. Nodes without a `label` attribute
    /// contribute nothing.
    pub fn of_neighborhood(g: &Graph, v: NodeId, radius: usize) -> Self {
        let mut dist = vec![usize::MAX; g.node_count()];
        let mut labels = Vec::new();
        let mut queue = VecDeque::new();
        dist[v.index()] = 0;
        queue.push_back(v);
        while let Some(u) = queue.pop_front() {
            if let Some(l) = g.node_label(u) {
                labels.push(l.clone());
            }
            if dist[u.index()] == radius {
                continue;
            }
            for (w, _) in g.incident(u) {
                if dist[w.index()] == usize::MAX {
                    dist[w.index()] = dist[u.index()] + 1;
                    queue.push_back(w);
                }
            }
        }
        Profile::from_labels(labels)
    }

    /// Number of labels in the profile.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True if the profile is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Sorted label slice.
    pub fn labels(&self) -> &[Value] {
        &self.labels
    }

    /// Multiset containment: every label of `self` appears in `other` at
    /// least as many times (two-pointer merge over the sorted vectors).
    pub fn subsumed_by(&self, other: &Profile) -> bool {
        if self.labels.len() > other.labels.len() {
            return false;
        }
        let mut j = 0;
        for l in &self.labels {
            // Advance j to the first element of other >= l.
            while j < other.labels.len() && other.labels[j] < *l {
                j += 1;
            }
            if j >= other.labels.len() || other.labels[j] != *l {
                return false;
            }
            j += 1;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::figure_4_16_graph;

    #[test]
    fn radius_zero_is_single_node() {
        let (g, ids) = figure_4_16_graph();
        let nb = neighborhood_subgraph(&g, ids[0], 0);
        assert_eq!(nb.graph.node_count(), 1);
        assert_eq!(nb.graph.edge_count(), 0);
        assert_eq!(nb.center, NodeId(0));
    }

    /// Figure 4.17: profiles of radius 1 are A1:ABC? Let's verify a few:
    /// A1 neighbors {B1, C2} -> profile ABC; B2 neighbors {A2, C2} ->
    /// ABC; A2 neighbors {B2} -> AB; C1 neighbors {B1} -> BC.
    #[test]
    fn figure_4_17_profiles() {
        let (g, ids) = figure_4_16_graph();
        let p = |v| {
            Profile::of_neighborhood(&g, v, 1)
                .labels()
                .iter()
                .map(|l| l.as_str().unwrap().to_string())
                .collect::<String>()
        };
        assert_eq!(p(ids[0]), "ABC"); // A1
        assert_eq!(p(ids[1]), "AB"); // A2
        assert_eq!(p(ids[2]), "ABCC"); // B1: A1, C1, C2
        assert_eq!(p(ids[3]), "ABC"); // B2: A2, C2
        assert_eq!(p(ids[4]), "BC"); // C1
        assert_eq!(p(ids[5]), "ABBC"); // C2: A1, B1, B2
    }

    #[test]
    fn neighborhood_subgraph_radius_one_of_a1() {
        let (g, ids) = figure_4_16_graph();
        let nb = neighborhood_subgraph(&g, ids[0], 1);
        // A1's ball: {A1, B1, C2}; induced edges: A1-B1, A1-C2, B1-C2.
        assert_eq!(nb.graph.node_count(), 3);
        assert_eq!(nb.graph.edge_count(), 3);
    }

    #[test]
    fn neighborhood_subgraph_radius_two_covers_more() {
        let (g, ids) = figure_4_16_graph();
        let nb = neighborhood_subgraph(&g, ids[1], 2); // A2: ball {A2,B2,C2}
        assert_eq!(nb.graph.node_count(), 3);
        let nb3 = neighborhood_subgraph(&g, ids[1], 3);
        assert_eq!(nb3.graph.node_count(), 5, "A2 ball r=3: A2,B2,C2,A1,B1");
    }

    /// Regression: the directed BFS used to follow out-edges only, so
    /// b's profile in a(A)→b(B)←c(C) came out as "B" — omitting the
    /// predecessor labels the §4.2 subsequence test needs, which let it
    /// prune valid candidates (see the matcher's
    /// `directed_profile_pruning_keeps_valid_candidates`).
    #[test]
    fn directed_profiles_include_predecessor_labels() {
        let mut g = Graph::new_directed();
        let a = g.add_labeled_node("A");
        let b = g.add_labeled_node("B");
        let c = g.add_labeled_node("C");
        g.add_edge(a, b, crate::Tuple::new()).unwrap();
        g.add_edge(c, b, crate::Tuple::new()).unwrap();
        let s = |v, r| {
            Profile::of_neighborhood(&g, v, r)
                .labels()
                .iter()
                .map(|l| l.as_str().unwrap().to_string())
                .collect::<String>()
        };
        assert_eq!(s(b, 1), "ABC", "b's ball must include both predecessors");
        assert_eq!(s(a, 1), "AB");
        assert_eq!(s(a, 2), "ABC", "c is two undirected hops from a");
    }

    /// Regression: directed neighborhood subgraphs must keep in-edges
    /// (and stay directed) instead of materializing only the out-BFS.
    #[test]
    fn directed_neighborhood_subgraph_keeps_in_edges() {
        let mut g = Graph::new_directed();
        let a = g.add_labeled_node("A");
        let b = g.add_labeled_node("B");
        let c = g.add_labeled_node("C");
        g.add_edge(a, b, crate::Tuple::new()).unwrap();
        g.add_edge(c, b, crate::Tuple::new()).unwrap();
        let nb = neighborhood_subgraph(&g, b, 1);
        assert!(nb.graph.is_directed());
        assert_eq!(nb.graph.node_count(), 3);
        assert_eq!(nb.graph.edge_count(), 2, "both in-edges belong to the ball");
        assert_eq!(nb.graph.degree(nb.center), 0, "b keeps out-degree 0");
    }

    #[test]
    fn profile_subsumption() {
        let p = Profile::from_labels(vec!["A".into(), "B".into(), "C".into()]);
        let q = Profile::from_labels(vec!["A".into(), "B".into(), "B".into(), "C".into()]);
        assert!(p.subsumed_by(&q));
        assert!(!q.subsumed_by(&p));
        let dup = Profile::from_labels(vec!["B".into(), "B".into()]);
        assert!(dup.subsumed_by(&q));
        assert!(!dup.subsumed_by(&p), "needs B twice");
        assert!(Profile::from_labels(Vec::<Value>::new()).subsumed_by(&p));
        assert!(!p.is_empty());
        assert_eq!(p.len(), 3);
    }
}
