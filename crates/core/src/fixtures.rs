//! Shared fixtures: the worked examples from the paper, used by unit
//! tests, integration tests, and the examples.

use crate::graph::{Graph, NodeId};
use crate::tuple::Tuple;

/// The sample database graph `G` of Figures 4.1 and 4.16: six nodes
/// A1, A2, B1, B2, C1, C2 and edges A1–B1, A1–C2, B1–C2, B1–C1, B2–C2,
/// A2–B2. Returns the graph and the node ids in the order
/// `[A1, A2, B1, B2, C1, C2]`.
pub fn figure_4_16_graph() -> (Graph, [NodeId; 6]) {
    let mut g = Graph::named("G");
    let a1 = g.add_named_node("A1", Tuple::new().with("label", "A"));
    let a2 = g.add_named_node("A2", Tuple::new().with("label", "A"));
    let b1 = g.add_named_node("B1", Tuple::new().with("label", "B"));
    let b2 = g.add_named_node("B2", Tuple::new().with("label", "B"));
    let c1 = g.add_named_node("C1", Tuple::new().with("label", "C"));
    let c2 = g.add_named_node("C2", Tuple::new().with("label", "C"));
    for (x, y) in [(a1, b1), (a1, c2), (b1, c2), (b1, c1), (b2, c2), (a2, b2)] {
        g.add_edge(x, y, Tuple::new())
            .expect("fixture edges are valid");
    }
    (g, [a1, a2, b1, b2, c1, c2])
}

/// The sample query `P` of Figures 4.1 and 4.16: the triangle A–B–C.
pub fn figure_4_16_pattern() -> Graph {
    let mut p = Graph::named("P");
    let a = p.add_named_node("u1", Tuple::new().with("label", "A"));
    let b = p.add_named_node("u2", Tuple::new().with("label", "B"));
    let c = p.add_named_node("u3", Tuple::new().with("label", "C"));
    p.add_edge(a, b, Tuple::new()).expect("valid");
    p.add_edge(b, c, Tuple::new()).expect("valid");
    p.add_edge(c, a, Tuple::new()).expect("valid");
    p
}

/// The paper graph of Figure 4.7: `graph G <inproceedings>` with a title
/// node and two `<author>` nodes, no edges.
pub fn figure_4_7_paper() -> Graph {
    let mut g = Graph::named("G");
    g.attrs = Tuple::tagged("inproceedings");
    g.add_named_node(
        "v1",
        Tuple::new().with("title", "Title1").with("year", 2006),
    );
    g.add_named_node("v2", Tuple::tagged("author").with("name", "A"));
    g.add_named_node("v3", Tuple::tagged("author").with("name", "B"));
    g
}

/// The DBLP collection of Figure 4.13: `G1` with authors A, B and `G2`
/// with authors C, D, A.
pub fn figure_4_13_dblp() -> Vec<Graph> {
    let mut g1 = Graph::named("G1");
    g1.add_named_node("v1", Tuple::tagged("author").with("name", "A"));
    g1.add_named_node("v2", Tuple::tagged("author").with("name", "B"));
    g1.attrs = Tuple::new().with("booktitle", "SIGMOD");
    let mut g2 = Graph::named("G2");
    g2.add_named_node("v1", Tuple::tagged("author").with("name", "C"));
    g2.add_named_node("v2", Tuple::tagged("author").with("name", "D"));
    g2.add_named_node("v3", Tuple::tagged("author").with("name", "A"));
    g2.attrs = Tuple::new().with("booktitle", "SIGMOD");
    vec![g1, g2]
}

/// A labeled path graph `l0 - l1 - ... - lk`; general-purpose helper.
pub fn labeled_path(labels: &[&str]) -> Graph {
    let mut g = Graph::new();
    let ids: Vec<NodeId> = labels.iter().map(|l| g.add_labeled_node(*l)).collect();
    for w in ids.windows(2) {
        g.add_edge(w[0], w[1], Tuple::new()).expect("valid");
    }
    g
}

/// A labeled clique on the given labels; helper for the clique workloads.
pub fn labeled_clique(labels: &[&str]) -> Graph {
    let mut g = Graph::new();
    let ids: Vec<NodeId> = labels.iter().map(|l| g.add_labeled_node(*l)).collect();
    for i in 0..ids.len() {
        for j in (i + 1)..ids.len() {
            g.add_edge(ids[i], ids[j], Tuple::new()).expect("valid");
        }
    }
    g
}

/// A labeled cycle.
pub fn labeled_cycle(labels: &[&str]) -> Graph {
    let mut g = labeled_path(labels);
    if labels.len() > 2 {
        g.add_edge(NodeId(0), NodeId(labels.len() as u32 - 1), Tuple::new())
            .expect("valid");
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixture_shapes() {
        let (g, ids) = figure_4_16_graph();
        assert_eq!(g.node_count(), 6);
        assert_eq!(g.edge_count(), 6);
        assert_eq!(g.degree(ids[1]), 1, "A2 has one neighbor");
        assert_eq!(g.degree(ids[4]), 1, "C1 has one neighbor");

        let p = figure_4_16_pattern();
        assert_eq!(p.node_count(), 3);
        assert_eq!(p.edge_count(), 3);

        let paper = figure_4_7_paper();
        assert_eq!(paper.node_count(), 3);
        assert_eq!(paper.edge_count(), 0);
        assert_eq!(paper.attrs.tag(), Some("inproceedings"));

        let dblp = figure_4_13_dblp();
        assert_eq!(dblp.len(), 2);
        assert_eq!(dblp[1].node_count(), 3);
    }

    #[test]
    fn helpers() {
        assert_eq!(labeled_path(&["A", "B", "C"]).edge_count(), 2);
        assert_eq!(labeled_clique(&["A", "B", "C", "D"]).edge_count(), 6);
        assert_eq!(labeled_cycle(&["A", "B", "C", "D"]).edge_count(), 4);
        assert_eq!(labeled_cycle(&["A", "B"]).edge_count(), 1);
    }
}
