//! Plain (un-optimized) subgraph isomorphism and graph isomorphism tests.
//!
//! These backtracking checkers serve two roles: (1) the *neighborhood
//! subgraph* pruning of §4.2 needs a sub-isomorphism test on small
//! r-balls, and (2) tests and property suites use them as a trusted
//! oracle against the optimized matcher in `gql-match`.
//!
//! Node compatibility is label equality when both nodes carry a `label`
//! attribute, else tuple subsumption of the pattern node's attributes.

use crate::graph::{Graph, NodeId};

/// True if pattern node `u`'s attributes admit data node `v`.
fn node_compatible(p: &Graph, u: NodeId, g: &Graph, v: NodeId) -> bool {
    p.node(u).attrs.subsumes(&g.node(v).attrs)
}

/// Checks whether `p` is subgraph-isomorphic to `g` (injective mapping
/// `V(p) → V(g)` such that every pattern edge maps to a data edge), with
/// node-attribute subsumption. Intended for *small* graphs (r-balls,
/// motifs, test oracles) — exponential in the worst case.
pub fn subgraph_isomorphic(p: &Graph, g: &Graph) -> bool {
    find_embedding(p, g, None).is_some()
}

/// Like [`subgraph_isomorphic`] but requires pattern node `anchor.0` to
/// map to data node `anchor.1` — the "with u_i mapped to v" condition of
/// the neighborhood-subgraph pruning rule (§4.2).
pub fn subgraph_isomorphic_anchored(p: &Graph, g: &Graph, anchor: (NodeId, NodeId)) -> bool {
    find_embedding(p, g, Some(anchor)).is_some()
}

/// Finds one embedding (as `pattern index → data NodeId`), or `None`.
pub fn find_embedding(
    p: &Graph,
    g: &Graph,
    anchor: Option<(NodeId, NodeId)>,
) -> Option<Vec<NodeId>> {
    let k = p.node_count();
    if k == 0 {
        return Some(Vec::new());
    }
    if k > g.node_count() || p.edge_count() > g.edge_count() {
        return None;
    }

    // Order pattern nodes: anchor first, then by connectivity to already
    // placed nodes (so `check` can prune early), ties by degree desc.
    let mut order: Vec<NodeId> = Vec::with_capacity(k);
    let mut placed = vec![false; k];
    if let Some((u, _)) = anchor {
        order.push(u);
        placed[u.index()] = true;
    }
    while order.len() < k {
        let mut best: Option<(usize, usize, NodeId)> = None; // (connected, degree, id)
        for u in p.node_ids() {
            if placed[u.index()] {
                continue;
            }
            let connected = p
                .neighbors(u)
                .iter()
                .filter(|(w, _)| placed[w.index()])
                .count();
            let key = (connected, p.degree(u), u);
            if best.is_none_or(|b| (b.0, b.1) < (key.0, key.1)) {
                best = Some(key);
            }
        }
        let (_, _, u) = best.expect("unplaced node must exist");
        placed[u.index()] = true;
        order.push(u);
    }

    let mut assign: Vec<Option<NodeId>> = vec![None; k];
    let mut used = vec![false; g.node_count()];

    fn search(
        p: &Graph,
        g: &Graph,
        order: &[NodeId],
        depth: usize,
        assign: &mut Vec<Option<NodeId>>,
        used: &mut Vec<bool>,
        anchor: Option<(NodeId, NodeId)>,
    ) -> bool {
        if depth == order.len() {
            return true;
        }
        let u = order[depth];
        let candidates: Vec<NodeId> = match anchor {
            Some((au, av)) if au == u => vec![av],
            _ => g.node_ids().collect(),
        };
        'cand: for v in candidates {
            if used[v.index()] || !node_compatible(p, u, g, v) {
                continue;
            }
            // All pattern edges to already-assigned nodes must exist in g.
            for &(w, _) in p.neighbors(u) {
                if let Some(mapped) = assign[w.index()] {
                    if !g.has_edge(v, mapped) && !g.has_edge(mapped, v) {
                        continue 'cand;
                    }
                }
            }
            assign[u.index()] = Some(v);
            used[v.index()] = true;
            if search(p, g, order, depth + 1, assign, used, anchor) {
                return true;
            }
            assign[u.index()] = None;
            used[v.index()] = false;
        }
        false
    }

    if search(p, g, &order, 0, &mut assign, &mut used, anchor) {
        Some(assign.into_iter().map(|a| a.expect("complete")).collect())
    } else {
        None
    }
}

/// Exact graph isomorphism (equal node/edge counts + bidirectional
/// sub-isomorphism on labels). Used by tests on small graphs.
pub fn graph_isomorphic(a: &Graph, b: &Graph) -> bool {
    a.node_count() == b.node_count()
        && a.edge_count() == b.edge_count()
        && subgraph_isomorphic(a, b)
        && subgraph_isomorphic(b, a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::Tuple;

    fn path(labels: &[&str]) -> Graph {
        let mut g = Graph::new();
        let ids: Vec<NodeId> = labels.iter().map(|l| g.add_labeled_node(*l)).collect();
        for w in ids.windows(2) {
            g.add_edge(w[0], w[1], Tuple::new()).unwrap();
        }
        g
    }

    fn triangle(labels: [&str; 3]) -> Graph {
        let mut g = path(&labels);
        g.add_edge(NodeId(0), NodeId(2), Tuple::new()).unwrap();
        g
    }

    use crate::fixtures::figure_4_16_graph;

    #[test]
    fn triangle_pattern_found_in_figure_graph() {
        let (g, _) = figure_4_16_graph();
        let p = triangle(["A", "B", "C"]);
        assert!(subgraph_isomorphic(&p, &g));
        let emb = find_embedding(&p, &g, None).unwrap();
        assert_eq!(emb.len(), 3);
        // Embedding must be A1(0), B1(2), C2(5) — the only triangle.
        let mut got = emb.clone();
        got.sort();
        assert_eq!(got, vec![NodeId(0), NodeId(2), NodeId(5)]);
    }

    #[test]
    fn missing_pattern_rejected() {
        let (g, _) = figure_4_16_graph();
        assert!(!subgraph_isomorphic(&triangle(["A", "A", "B"]), &g));
        assert!(!subgraph_isomorphic(&path(&["C", "C"]), &g));
        assert!(subgraph_isomorphic(&path(&["C", "B", "C"]), &g));
    }

    #[test]
    fn anchored_search_respects_anchor() {
        let (g, ids) = figure_4_16_graph();
        let p = triangle(["A", "B", "C"]);
        assert!(subgraph_isomorphic_anchored(&p, &g, (NodeId(0), ids[0])));
        assert!(
            !subgraph_isomorphic_anchored(&p, &g, (NodeId(0), ids[1])),
            "A2 is in no triangle"
        );
    }

    #[test]
    fn isomorphism_is_label_sensitive() {
        assert!(graph_isomorphic(
            &triangle(["A", "B", "C"]),
            &triangle(["C", "A", "B"])
        ));
        assert!(!graph_isomorphic(
            &triangle(["A", "B", "C"]),
            &triangle(["A", "B", "B"])
        ));
        assert!(!graph_isomorphic(
            &path(&["A", "B"]),
            &triangle(["A", "B", "C"])
        ));
    }

    #[test]
    fn empty_pattern_matches_anything() {
        let g = path(&["A"]);
        assert!(subgraph_isomorphic(&Graph::new(), &g));
        assert!(graph_isomorphic(&Graph::new(), &Graph::new()));
    }

    #[test]
    fn attribute_subsumption_matching() {
        let mut g = Graph::new();
        let v = g.add_node(Tuple::tagged("author").with("name", "A").with("age", 30));
        let w = g.add_node(Tuple::tagged("author").with("name", "B"));
        g.add_edge(v, w, Tuple::new()).unwrap();

        let mut p = Graph::new();
        let u1 = p.add_node(Tuple::tagged("author"));
        let u2 = p.add_node(Tuple::new().with("name", "B"));
        p.add_edge(u1, u2, Tuple::new()).unwrap();
        assert!(subgraph_isomorphic(&p, &g));

        let mut p2 = Graph::new();
        p2.add_node(Tuple::tagged("editor"));
        assert!(!subgraph_isomorphic(&p2, &g));
    }
}
