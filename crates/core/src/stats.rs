//! Label statistics for the cost model of §4.4.
//!
//! The reduction factor γ of a join is estimated from conditional edge
//! probabilities: `P(e(u,v)) = freq(e(u,v)) / (freq(u) · freq(v))`, where
//! `freq()` counts occurrences of node labels and of label-pair edges in
//! the large graph (Definition 4.11).
//!
//! Frequencies are keyed by interned `u32` label ids (see
//! [`crate::intern`]), not by cloned [`Value`]s: collection interns each
//! distinct label once and counts integers from then on, and an index
//! that already computed per-node label ids can hand them over via
//! [`GraphStats::from_interned`] without rescanning attribute tuples.
//! The `Value`-keyed query API is preserved on top (a lookup is one
//! dictionary probe), so both views are observably equivalent.

use crate::graph::Graph;
use crate::intern::{LabelInterner, NO_LABEL};
use crate::value::Value;
use rustc_hash::FxHashMap;
use std::sync::Arc;

/// Node-label and edge-label-pair frequencies of a data graph.
#[derive(Debug, Clone, Default)]
pub struct GraphStats {
    /// Dictionary the frequency keys refer to; shared with the owning
    /// index when built via [`GraphStats::from_interned`].
    interner: Arc<LabelInterner>,
    node_freq: FxHashMap<u32, u64>,
    /// Keyed by unordered id pair (normalized low-high) for undirected
    /// graphs, ordered pair for directed ones.
    edge_freq: FxHashMap<(u32, u32), u64>,
    directed: bool,
    node_count: u64,
    edge_count: u64,
    /// Per-`(label id, attribute)` property-run summaries
    /// `(entries, distinct values)`, recorded when a secondary property
    /// index is built; feeds the planner's selectivity estimates.
    prop_runs: FxHashMap<u32, FxHashMap<String, (u64, u64)>>,
}

impl GraphStats {
    /// Scans `g` once, interning each distinct label and counting ids.
    pub fn collect(g: &Graph) -> Self {
        let mut interner = LabelInterner::new();
        let mut ids = vec![NO_LABEL; g.node_count()];
        for (id, n) in g.nodes() {
            if let Some(l) = n.attrs.get("label") {
                ids[id.index()] = interner.intern(l);
            }
        }
        Self::from_interned(Arc::new(interner), g, &ids)
    }

    /// Builds the statistics from label ids an index already computed
    /// (one entry per node, [`NO_LABEL`] for unlabeled nodes), sharing
    /// the index's dictionary instead of re-interning every label.
    pub fn from_interned(interner: Arc<LabelInterner>, g: &Graph, node_label_ids: &[u32]) -> Self {
        let mut s = GraphStats {
            interner,
            directed: g.is_directed(),
            node_count: g.node_count() as u64,
            edge_count: g.edge_count() as u64,
            ..GraphStats::default()
        };
        for &lid in node_label_ids {
            if lid != NO_LABEL {
                *s.node_freq.entry(lid).or_insert(0) += 1;
            }
        }
        for (_, e) in g.edges() {
            let (a, b) = (node_label_ids[e.src.index()], node_label_ids[e.dst.index()]);
            if a != NO_LABEL && b != NO_LABEL {
                let key = s.normalize(a, b);
                *s.edge_freq.entry(key).or_insert(0) += 1;
            }
        }
        s
    }

    fn normalize(&self, a: u32, b: u32) -> (u32, u32) {
        if self.directed || a <= b {
            (a, b)
        } else {
            (b, a)
        }
    }

    /// The label dictionary the id-keyed accessors refer to.
    pub fn interner(&self) -> &LabelInterner {
        &self.interner
    }

    /// Total nodes scanned.
    pub fn node_count(&self) -> u64 {
        self.node_count
    }

    /// Total edges scanned.
    pub fn edge_count(&self) -> u64 {
        self.edge_count
    }

    /// `freq(label)`: number of nodes carrying `label`.
    pub fn node_label_freq(&self, label: &Value) -> u64 {
        self.interner
            .lookup(label)
            .map_or(0, |id| self.node_label_freq_id(id))
    }

    /// `freq(label)` by interned id (0 for sentinels/unseen ids).
    #[inline]
    pub fn node_label_freq_id(&self, id: u32) -> u64 {
        self.node_freq.get(&id).copied().unwrap_or(0)
    }

    /// `freq(e(a,b))`: number of edges whose endpoint labels are `(a,b)`.
    pub fn edge_label_freq(&self, a: &Value, b: &Value) -> u64 {
        match (self.interner.lookup(a), self.interner.lookup(b)) {
            (Some(a), Some(b)) => self.edge_label_freq_ids(a, b),
            _ => 0,
        }
    }

    /// `freq(e(a,b))` by interned endpoint ids.
    #[inline]
    pub fn edge_label_freq_ids(&self, a: u32, b: u32) -> u64 {
        let key = self.normalize(a, b);
        self.edge_freq.get(&key).copied().unwrap_or(0)
    }

    /// The paper's conditional edge probability
    /// `P(e(u,v)) = freq(e(u,v)) / (freq(u)·freq(v))`, clamped to
    /// `[0, 1]`. Returns 0 when either label is absent (no such node can
    /// participate in a match).
    pub fn edge_probability(&self, a: &Value, b: &Value) -> f64 {
        match (self.interner.lookup(a), self.interner.lookup(b)) {
            (Some(a), Some(b)) => self.edge_probability_ids(a, b),
            _ => 0.0,
        }
    }

    /// [`GraphStats::edge_probability`] by interned endpoint ids.
    pub fn edge_probability_ids(&self, a: u32, b: u32) -> f64 {
        let fu = self.node_label_freq_id(a);
        let fv = self.node_label_freq_id(b);
        if fu == 0 || fv == 0 {
            return 0.0;
        }
        let fe = self.edge_label_freq_ids(a, b) as f64;
        (fe / (fu as f64 * fv as f64)).min(1.0)
    }

    /// The top-`k` most frequent node labels (ties broken by label
    /// order) — the clique-query workload draws labels from the top 40
    /// (§5.1).
    pub fn top_labels(&self, k: usize) -> Vec<Value> {
        let mut v: Vec<(&Value, u64)> = self
            .node_freq
            .iter()
            .map(|(&id, &f)| (self.interner.resolve(id), f))
            .collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));
        v.into_iter().take(k).map(|(l, _)| l.clone()).collect()
    }

    /// Number of distinct node labels.
    pub fn distinct_labels(&self) -> usize {
        self.node_freq.len()
    }

    /// Records one node property-run summary: `len` indexed entries with
    /// `distinct` distinct values for `attr` on nodes labeled `label`.
    pub fn record_prop_run(&mut self, label: u32, attr: &str, len: u64, distinct: u64) {
        self.prop_runs
            .entry(label)
            .or_default()
            .insert(attr.to_string(), (len, distinct));
    }

    /// The `(entries, distinct)` summary of the property run for
    /// `(label, attr)`, if one was recorded.
    pub fn prop_run(&self, label: u32, attr: &str) -> Option<(u64, u64)> {
        self.prop_runs.get(&label)?.get(attr).copied()
    }

    /// Equality-probe selectivity estimate: expected candidates for
    /// `attr == key` on nodes labeled `label`, assuming a uniform value
    /// distribution (`entries / distinct`). `None` without a run.
    pub fn eq_probe_estimate(&self, label: u32, attr: &str) -> Option<f64> {
        let (len, distinct) = self.prop_run(label, attr)?;
        Some(len as f64 / (distinct.max(1)) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::figure_4_16_graph;

    #[test]
    fn figure_graph_frequencies() {
        let (g, _) = figure_4_16_graph();
        let s = GraphStats::collect(&g);
        assert_eq!(s.node_count(), 6);
        assert_eq!(s.edge_count(), 6);
        assert_eq!(s.distinct_labels(), 3);
        let l = |x: &str| Value::Str(x.into());
        assert_eq!(s.node_label_freq(&l("A")), 2);
        assert_eq!(s.node_label_freq(&l("B")), 2);
        assert_eq!(s.node_label_freq(&l("C")), 2);
        assert_eq!(s.node_label_freq(&l("Z")), 0);
        // Edges: A-B ×2 (A1B1, A2B2), A-C ×1, B-C ×3 (B1C1, B1C2, B2C2).
        assert_eq!(s.edge_label_freq(&l("A"), &l("B")), 2);
        assert_eq!(s.edge_label_freq(&l("B"), &l("A")), 2, "unordered");
        assert_eq!(s.edge_label_freq(&l("A"), &l("C")), 1);
        assert_eq!(s.edge_label_freq(&l("B"), &l("C")), 3);
        assert_eq!(s.edge_label_freq(&l("A"), &l("A")), 0);
    }

    #[test]
    fn probabilities() {
        let (g, _) = figure_4_16_graph();
        let s = GraphStats::collect(&g);
        let l = |x: &str| Value::Str(x.into());
        assert!((s.edge_probability(&l("A"), &l("B")) - 0.5).abs() < 1e-12);
        assert!((s.edge_probability(&l("B"), &l("C")) - 0.75).abs() < 1e-12);
        assert_eq!(s.edge_probability(&l("A"), &l("Z")), 0.0);
    }

    #[test]
    fn id_accessors_agree_with_value_accessors() {
        let (g, _) = figure_4_16_graph();
        let s = GraphStats::collect(&g);
        for a in ["A", "B", "C"] {
            let va = Value::Str(a.into());
            let ia = s.interner().lookup(&va).unwrap();
            assert_eq!(s.node_label_freq_id(ia), s.node_label_freq(&va));
            for b in ["A", "B", "C"] {
                let vb = Value::Str(b.into());
                let ib = s.interner().lookup(&vb).unwrap();
                assert_eq!(s.edge_label_freq_ids(ia, ib), s.edge_label_freq(&va, &vb));
                assert_eq!(
                    s.edge_probability_ids(ia, ib).to_bits(),
                    s.edge_probability(&va, &vb).to_bits()
                );
            }
        }
        assert_eq!(s.node_label_freq_id(NO_LABEL), 0);
    }

    #[test]
    fn from_interned_matches_collect() {
        let (g, _) = figure_4_16_graph();
        let mut interner = LabelInterner::new();
        let mut ids = vec![NO_LABEL; g.node_count()];
        for (id, n) in g.nodes() {
            if let Some(l) = n.attrs.get("label") {
                ids[id.index()] = interner.intern(l);
            }
        }
        let shared = Arc::new(interner);
        let s = GraphStats::from_interned(Arc::clone(&shared), &g, &ids);
        let c = GraphStats::collect(&g);
        let l = |x: &str| Value::Str(x.into());
        for a in ["A", "B", "C", "Z"] {
            assert_eq!(s.node_label_freq(&l(a)), c.node_label_freq(&l(a)));
            for b in ["A", "B", "C"] {
                assert_eq!(
                    s.edge_label_freq(&l(a), &l(b)),
                    c.edge_label_freq(&l(a), &l(b))
                );
            }
        }
        assert_eq!(s.distinct_labels(), c.distinct_labels());
        assert!(
            Arc::ptr_eq(&shared, &s.interner),
            "dictionary is shared, not copied"
        );
    }

    #[test]
    fn top_labels_order() {
        let (g, _) = figure_4_16_graph();
        let mut g = g;
        g.add_labeled_node("B");
        let s = GraphStats::collect(&g);
        let top = s.top_labels(2);
        assert_eq!(top[0], Value::Str("B".into()));
        assert_eq!(top.len(), 2);
    }

    #[test]
    fn prop_run_summaries_round_trip() {
        let (g, _) = figure_4_16_graph();
        let mut s = GraphStats::collect(&g);
        assert_eq!(s.prop_run(0, "year"), None);
        s.record_prop_run(0, "year", 10, 4);
        assert_eq!(s.prop_run(0, "year"), Some((10, 4)));
        assert!((s.eq_probe_estimate(0, "year").unwrap() - 2.5).abs() < 1e-12);
        assert_eq!(s.eq_probe_estimate(0, "absent"), None);
    }

    #[test]
    fn directed_edge_freq_is_ordered() {
        let mut g = Graph::new_directed();
        let a = g.add_labeled_node("A");
        let b = g.add_labeled_node("B");
        g.add_edge(a, b, crate::tuple::Tuple::new()).unwrap();
        let s = GraphStats::collect(&g);
        let l = |x: &str| Value::Str(x.into());
        assert_eq!(s.edge_label_freq(&l("A"), &l("B")), 1);
        assert_eq!(s.edge_label_freq(&l("B"), &l("A")), 0);
    }
}
