//! Label statistics for the cost model of §4.4.
//!
//! The reduction factor γ of a join is estimated from conditional edge
//! probabilities: `P(e(u,v)) = freq(e(u,v)) / (freq(u) · freq(v))`, where
//! `freq()` counts occurrences of node labels and of label-pair edges in
//! the large graph (Definition 4.11).

use crate::graph::Graph;
use crate::value::Value;
use rustc_hash::FxHashMap;

/// Node-label and edge-label-pair frequencies of a data graph.
#[derive(Debug, Clone, Default)]
pub struct GraphStats {
    node_freq: FxHashMap<Value, u64>,
    /// Keyed by unordered label pair (lexicographically normalized) for
    /// undirected graphs, ordered pair for directed ones.
    edge_freq: FxHashMap<(Value, Value), u64>,
    directed: bool,
    node_count: u64,
    edge_count: u64,
}

impl GraphStats {
    /// Scans `g` once and collects the frequencies.
    pub fn collect(g: &Graph) -> Self {
        let mut s = GraphStats {
            directed: g.is_directed(),
            node_count: g.node_count() as u64,
            edge_count: g.edge_count() as u64,
            ..GraphStats::default()
        };
        for (_, n) in g.nodes() {
            if let Some(l) = n.attrs.get("label") {
                *s.node_freq.entry(l.clone()).or_insert(0) += 1;
            }
        }
        for (_, e) in g.edges() {
            let (a, b) = (g.node_label(e.src), g.node_label(e.dst));
            if let (Some(a), Some(b)) = (a, b) {
                let key = s.normalize(a.clone(), b.clone());
                *s.edge_freq.entry(key).or_insert(0) += 1;
            }
        }
        s
    }

    fn normalize(&self, a: Value, b: Value) -> (Value, Value) {
        if self.directed || a <= b {
            (a, b)
        } else {
            (b, a)
        }
    }

    /// Total nodes scanned.
    pub fn node_count(&self) -> u64 {
        self.node_count
    }

    /// Total edges scanned.
    pub fn edge_count(&self) -> u64 {
        self.edge_count
    }

    /// `freq(label)`: number of nodes carrying `label`.
    pub fn node_label_freq(&self, label: &Value) -> u64 {
        self.node_freq.get(label).copied().unwrap_or(0)
    }

    /// `freq(e(a,b))`: number of edges whose endpoint labels are `(a,b)`.
    pub fn edge_label_freq(&self, a: &Value, b: &Value) -> u64 {
        let key = self.normalize(a.clone(), b.clone());
        self.edge_freq.get(&key).copied().unwrap_or(0)
    }

    /// The paper's conditional edge probability
    /// `P(e(u,v)) = freq(e(u,v)) / (freq(u)·freq(v))`, clamped to
    /// `[0, 1]`. Returns 0 when either label is absent (no such node can
    /// participate in a match).
    pub fn edge_probability(&self, a: &Value, b: &Value) -> f64 {
        let fu = self.node_label_freq(a);
        let fv = self.node_label_freq(b);
        if fu == 0 || fv == 0 {
            return 0.0;
        }
        let fe = self.edge_label_freq(a, b) as f64;
        (fe / (fu as f64 * fv as f64)).min(1.0)
    }

    /// The top-`k` most frequent node labels (ties broken by label
    /// order) — the clique-query workload draws labels from the top 40
    /// (§5.1).
    pub fn top_labels(&self, k: usize) -> Vec<Value> {
        let mut v: Vec<(&Value, u64)> = self.node_freq.iter().map(|(l, f)| (l, *f)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));
        v.into_iter().take(k).map(|(l, _)| l.clone()).collect()
    }

    /// Number of distinct node labels.
    pub fn distinct_labels(&self) -> usize {
        self.node_freq.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::figure_4_16_graph;

    #[test]
    fn figure_graph_frequencies() {
        let (g, _) = figure_4_16_graph();
        let s = GraphStats::collect(&g);
        assert_eq!(s.node_count(), 6);
        assert_eq!(s.edge_count(), 6);
        assert_eq!(s.distinct_labels(), 3);
        let l = |x: &str| Value::Str(x.into());
        assert_eq!(s.node_label_freq(&l("A")), 2);
        assert_eq!(s.node_label_freq(&l("B")), 2);
        assert_eq!(s.node_label_freq(&l("C")), 2);
        assert_eq!(s.node_label_freq(&l("Z")), 0);
        // Edges: A-B ×2 (A1B1, A2B2), A-C ×1, B-C ×3 (B1C1, B1C2, B2C2).
        assert_eq!(s.edge_label_freq(&l("A"), &l("B")), 2);
        assert_eq!(s.edge_label_freq(&l("B"), &l("A")), 2, "unordered");
        assert_eq!(s.edge_label_freq(&l("A"), &l("C")), 1);
        assert_eq!(s.edge_label_freq(&l("B"), &l("C")), 3);
        assert_eq!(s.edge_label_freq(&l("A"), &l("A")), 0);
    }

    #[test]
    fn probabilities() {
        let (g, _) = figure_4_16_graph();
        let s = GraphStats::collect(&g);
        let l = |x: &str| Value::Str(x.into());
        assert!((s.edge_probability(&l("A"), &l("B")) - 0.5).abs() < 1e-12);
        assert!((s.edge_probability(&l("B"), &l("C")) - 0.75).abs() < 1e-12);
        assert_eq!(s.edge_probability(&l("A"), &l("Z")), 0.0);
    }

    #[test]
    fn top_labels_order() {
        let (g, _) = figure_4_16_graph();
        let mut g = g;
        g.add_labeled_node("B");
        let s = GraphStats::collect(&g);
        let top = s.top_labels(2);
        assert_eq!(top[0], Value::Str("B".into()));
        assert_eq!(top.len(), 2);
    }

    #[test]
    fn directed_edge_freq_is_ordered() {
        let mut g = Graph::new_directed();
        let a = g.add_labeled_node("A");
        let b = g.add_labeled_node("B");
        g.add_edge(a, b, crate::tuple::Tuple::new()).unwrap();
        let s = GraphStats::collect(&g);
        let l = |x: &str| Value::Str(x.into());
        assert_eq!(s.edge_label_freq(&l("A"), &l("B")), 1);
        assert_eq!(s.edge_label_freq(&l("B"), &l("A")), 0);
    }
}
