//! Compact binary storage for graphs — the §7 "Physical Storage of
//! Graph Data" direction, in its simplest useful form: a length-prefixed
//! binary codec for [`GraphData`] suitable for files and network
//! exchange. Varint-encoded, versioned, with checksummed framing.
//!
//! Format (all integers LEB128 varints unless noted):
//!
//! ```text
//! magic  "GQL1" (4 bytes)
//! flags  u8 (bit 0: directed)
//! name   optional string
//! attrs  tuple
//! nodes  count, then per node: optional name, tuple
//! edges  count, then per edge: optional name, src, dst, tuple
//! crc    u32-le of everything after the magic (FNV-1a folded)
//! ```

use crate::error::CoreError;
use crate::graph::Graph;
use crate::io::{EdgeData, GraphData, NodeData};
use crate::tuple::Tuple;
use crate::value::Value;
use std::fmt;

/// Errors from decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// Input does not start with the magic bytes.
    BadMagic,
    /// Input ended prematurely.
    Truncated,
    /// Checksum mismatch: corrupted payload.
    Corrupt,
    /// Malformed content (invalid tag byte, bad UTF-8, ...).
    Malformed(&'static str),
    /// Structural validation failed when rebuilding the graph.
    Invalid(CoreError),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::BadMagic => write!(f, "not a GQL1 graph file"),
            StorageError::Truncated => write!(f, "unexpected end of input"),
            StorageError::Corrupt => write!(f, "checksum mismatch"),
            StorageError::Malformed(what) => write!(f, "malformed field: {what}"),
            StorageError::Invalid(e) => write!(f, "invalid graph: {e}"),
        }
    }
}

impl std::error::Error for StorageError {}

/// Result alias.
pub type Result<T> = std::result::Result<T, StorageError>;

const MAGIC: &[u8; 4] = b"GQL1";

// ---- primitives -------------------------------------------------------
//
// Public: the storage crate's WAL and segment formats reuse the same
// LEB128/value/checksum primitives so every on-disk artifact shares one
// codec (and one set of corruption tests).

/// Destination for the `put_*` encoders: an in-memory `Vec<u8>` or a
/// streaming writer (the storage crate's segment writer pushes encoded
/// bytes straight through a fixed-size buffer to the file, folding the
/// checksum incrementally, so checkpointing never materializes a whole
/// section).
pub trait ByteSink {
    /// Appends raw bytes.
    fn put_bytes(&mut self, bytes: &[u8]);

    /// Appends one byte.
    fn put_byte(&mut self, b: u8) {
        self.put_bytes(&[b]);
    }
}

impl ByteSink for Vec<u8> {
    fn put_bytes(&mut self, bytes: &[u8]) {
        self.extend_from_slice(bytes);
    }

    fn put_byte(&mut self, b: u8) {
        self.push(b);
    }
}

/// Appends `v` as a LEB128 varint.
pub fn put_varint<S: ByteSink + ?Sized>(out: &mut S, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.put_byte(byte);
            return;
        }
        out.put_byte(byte | 0x80);
    }
}

/// Reads a LEB128 varint starting at `pos`, advancing it.
pub fn get_varint(buf: &[u8], pos: &mut usize) -> Result<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = *buf.get(*pos).ok_or(StorageError::Truncated)?;
        *pos += 1;
        if shift >= 63 && byte > 1 {
            return Err(StorageError::Malformed("varint overflow"));
        }
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Appends a length-prefixed UTF-8 string.
pub fn put_str<S: ByteSink + ?Sized>(out: &mut S, s: &str) {
    put_varint(out, s.len() as u64);
    out.put_bytes(s.as_bytes());
}

/// Reads a length-prefixed UTF-8 string starting at `pos`.
pub fn get_str(buf: &[u8], pos: &mut usize) -> Result<String> {
    let len = get_varint(buf, pos)? as usize;
    let end = pos.checked_add(len).ok_or(StorageError::Truncated)?;
    if end > buf.len() {
        return Err(StorageError::Truncated);
    }
    let s = std::str::from_utf8(&buf[*pos..end])
        .map_err(|_| StorageError::Malformed("utf-8 string"))?
        .to_string();
    *pos = end;
    Ok(s)
}

/// Appends an optional string (presence byte + string).
pub fn put_opt_str<S: ByteSink + ?Sized>(out: &mut S, s: &Option<String>) {
    match s {
        None => out.put_byte(0),
        Some(s) => {
            out.put_byte(1);
            put_str(out, s);
        }
    }
}

/// Reads an optional string written by [`put_opt_str`].
pub fn get_opt_str(buf: &[u8], pos: &mut usize) -> Result<Option<String>> {
    match *buf.get(*pos).ok_or(StorageError::Truncated)? {
        0 => {
            *pos += 1;
            Ok(None)
        }
        1 => {
            *pos += 1;
            Ok(Some(get_str(buf, pos)?))
        }
        _ => Err(StorageError::Malformed("option tag")),
    }
}

/// Appends a tagged [`Value`].
pub fn put_value<S: ByteSink + ?Sized>(out: &mut S, v: &Value) {
    match v {
        Value::Int(i) => {
            out.put_byte(0);
            put_varint(out, zigzag(*i));
        }
        Value::Float(f) => {
            out.put_byte(1);
            out.put_bytes(&f.to_le_bytes());
        }
        Value::Str(s) => {
            out.put_byte(2);
            put_str(out, s);
        }
        Value::Bool(b) => out.put_byte(3 + u8::from(*b)),
    }
}

/// Reads a [`Value`] written by [`put_value`].
pub fn get_value(buf: &[u8], pos: &mut usize) -> Result<Value> {
    let tag = *buf.get(*pos).ok_or(StorageError::Truncated)?;
    *pos += 1;
    Ok(match tag {
        0 => Value::Int(unzigzag(get_varint(buf, pos)?)),
        1 => {
            let end = *pos + 8;
            if end > buf.len() {
                return Err(StorageError::Truncated);
            }
            let mut b = [0u8; 8];
            b.copy_from_slice(&buf[*pos..end]);
            *pos = end;
            Value::Float(f64::from_le_bytes(b))
        }
        2 => Value::Str(get_str(buf, pos)?),
        3 => Value::Bool(false),
        4 => Value::Bool(true),
        _ => return Err(StorageError::Malformed("value tag")),
    })
}

/// Appends a [`Tuple`] (tag + sorted name/value pairs).
pub fn put_tuple<S: ByteSink + ?Sized>(out: &mut S, t: &Tuple) {
    put_opt_str(out, &t.tag().map(str::to_string));
    put_varint(out, t.len() as u64);
    for (k, v) in t.iter() {
        put_str(out, k);
        put_value(out, v);
    }
}

/// Reads a [`Tuple`] written by [`put_tuple`].
pub fn get_tuple(buf: &[u8], pos: &mut usize) -> Result<Tuple> {
    let mut t = Tuple::new();
    if let Some(tag) = get_opt_str(buf, pos)? {
        t.set_tag(tag);
    }
    let n = get_varint(buf, pos)? as usize;
    for _ in 0..n {
        let k = get_str(buf, pos)?;
        let v = get_value(buf, pos)?;
        t.set(k, v);
    }
    Ok(t)
}

/// FNV-1a offset basis — seed for [`fnv1a_update`] when folding a
/// checksum incrementally over streamed chunks.
pub const FNV_BASIS: u32 = 0x811c_9dc5;

/// Folds `data` into a running FNV-1a state. Byte-streaming, so
/// `fnv1a_update(fnv1a_update(FNV_BASIS, a), b) == fnv1a(a ++ b)` —
/// the property the streaming segment writer relies on.
pub fn fnv1a_update(mut h: u32, data: &[u8]) -> u32 {
    for &b in data {
        h ^= u32::from(b);
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

/// 32-bit FNV-1a over `data` — the checksum every GQL1-family frame
/// (graph files, WAL records, checkpoint sections) carries.
pub fn fnv1a(data: &[u8]) -> u32 {
    fnv1a_update(FNV_BASIS, data)
}

// ---- public API -------------------------------------------------------

/// Encodes a graph into the GQL1 binary format.
pub fn encode_graph(g: &Graph) -> Vec<u8> {
    encode_graph_data(&GraphData::from(g))
}

/// Encodes an already-flat [`GraphData`] into the GQL1 binary format —
/// the bulk-load path, which never materializes a mutable [`Graph`].
pub fn encode_graph_data(data: &GraphData) -> Vec<u8> {
    let mut out = Vec::with_capacity(64 + 16 * (data.nodes.len() + data.edges.len()));
    out.extend_from_slice(MAGIC);
    let body_start = out.len();
    out.push(u8::from(data.directed));
    put_opt_str(&mut out, &data.name);
    put_tuple(&mut out, &data.attrs);
    put_varint(&mut out, data.nodes.len() as u64);
    for n in &data.nodes {
        put_opt_str(&mut out, &n.name);
        put_tuple(&mut out, &n.attrs);
    }
    put_varint(&mut out, data.edges.len() as u64);
    for e in &data.edges {
        put_opt_str(&mut out, &e.name);
        put_varint(&mut out, u64::from(e.src));
        put_varint(&mut out, u64::from(e.dst));
        put_tuple(&mut out, &e.attrs);
    }
    let crc = fnv1a(&out[body_start..]);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Decodes a GQL1 buffer back into a graph (rebuilding all indexes).
pub fn decode_graph(buf: &[u8]) -> Result<Graph> {
    if buf.len() < MAGIC.len() + 5 {
        return Err(if buf.starts_with(MAGIC) || buf.len() < 4 {
            StorageError::Truncated
        } else {
            StorageError::BadMagic
        });
    }
    if &buf[..4] != MAGIC {
        return Err(StorageError::BadMagic);
    }
    let body = &buf[4..buf.len() - 4];
    let crc_stored = u32::from_le_bytes(
        buf[buf.len() - 4..]
            .try_into()
            .expect("length checked above"),
    );
    if fnv1a(body) != crc_stored {
        return Err(StorageError::Corrupt);
    }
    let mut pos = 0usize;
    let flags = *body.first().ok_or(StorageError::Truncated)?;
    pos += 1;
    if flags > 1 {
        return Err(StorageError::Malformed("flags"));
    }
    let name = get_opt_str(body, &mut pos)?;
    let attrs = get_tuple(body, &mut pos)?;
    let n_nodes = get_varint(body, &mut pos)? as usize;
    if n_nodes > body.len() {
        return Err(StorageError::Malformed("node count"));
    }
    let mut nodes = Vec::with_capacity(n_nodes);
    for _ in 0..n_nodes {
        nodes.push(NodeData {
            name: get_opt_str(body, &mut pos)?,
            attrs: get_tuple(body, &mut pos)?,
        });
    }
    let n_edges = get_varint(body, &mut pos)? as usize;
    if n_edges > body.len() {
        return Err(StorageError::Malformed("edge count"));
    }
    let mut edges = Vec::with_capacity(n_edges);
    for _ in 0..n_edges {
        let name = get_opt_str(body, &mut pos)?;
        let src = get_varint(body, &mut pos)?;
        let dst = get_varint(body, &mut pos)?;
        if src > u64::from(u32::MAX) || dst > u64::from(u32::MAX) {
            return Err(StorageError::Malformed("edge endpoint"));
        }
        edges.push(EdgeData {
            name,
            src: src as u32,
            dst: dst as u32,
            attrs: get_tuple(body, &mut pos)?,
        });
    }
    if pos != body.len() {
        return Err(StorageError::Malformed("trailing bytes"));
    }
    let data = GraphData {
        name,
        attrs,
        directed: flags & 1 == 1,
        nodes,
        edges,
    };
    data.into_graph().map_err(StorageError::Invalid)
}

/// Encodes many graphs (a collection) as consecutive length-prefixed
/// GQL1 frames.
pub fn encode_collection<'a, I: IntoIterator<Item = &'a Graph>>(graphs: I) -> Vec<u8> {
    let mut out = Vec::new();
    for g in graphs {
        let frame = encode_graph(g);
        put_varint(&mut out, frame.len() as u64);
        out.extend_from_slice(&frame);
    }
    out
}

/// Decodes a stream written by [`encode_collection`].
pub fn decode_collection(buf: &[u8]) -> Result<Vec<Graph>> {
    let mut pos = 0usize;
    let mut out = Vec::new();
    while pos < buf.len() {
        let len = get_varint(buf, &mut pos)? as usize;
        let end = pos.checked_add(len).ok_or(StorageError::Truncated)?;
        if end > buf.len() {
            return Err(StorageError::Truncated);
        }
        out.push(decode_graph(&buf[pos..end])?);
        pos = end;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{figure_4_16_graph, figure_4_7_paper};
    use crate::graph::NodeId;

    #[test]
    fn round_trip_labeled_graph() {
        let (g, _) = figure_4_16_graph();
        let bytes = encode_graph(&g);
        let back = decode_graph(&bytes).unwrap();
        assert_eq!(back.node_count(), 6);
        assert_eq!(back.edge_count(), 6);
        assert!(back.has_edge(NodeId(0), NodeId(2)));
        assert_eq!(back.node(NodeId(0)).name.as_deref(), Some("A1"));
    }

    #[test]
    fn round_trip_attributes_and_types() {
        let mut g = figure_4_7_paper();
        g.attrs.set("pi", 3.25f64);
        g.attrs.set("ok", true);
        g.attrs.set("neg", -42i64);
        let back = decode_graph(&encode_graph(&g)).unwrap();
        assert_eq!(back.attrs.get("pi"), Some(&Value::Float(3.25)));
        assert_eq!(back.attrs.get("ok"), Some(&Value::Bool(true)));
        assert_eq!(back.attrs.get("neg"), Some(&Value::Int(-42)));
        assert_eq!(back.attrs.tag(), Some("inproceedings"));
    }

    #[test]
    fn directed_flag_round_trips() {
        let mut g = Graph::new_directed();
        let a = g.add_labeled_node("A");
        let b = g.add_labeled_node("B");
        g.add_edge(a, b, Tuple::new()).unwrap();
        let back = decode_graph(&encode_graph(&g)).unwrap();
        assert!(back.is_directed());
        assert!(back.has_edge(a, b));
        assert!(!back.has_edge(b, a));
    }

    #[test]
    fn corruption_is_detected() {
        let (g, _) = figure_4_16_graph();
        let mut bytes = encode_graph(&g);
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        assert!(matches!(
            decode_graph(&bytes),
            Err(StorageError::Corrupt) | Err(StorageError::Malformed(_))
        ));
        assert!(matches!(
            decode_graph(b"NOPE-this-is-not-a-graph"),
            Err(StorageError::BadMagic)
        ));
        assert!(matches!(
            decode_graph(&bytes[..3]),
            Err(StorageError::Truncated)
        ));
    }

    #[test]
    fn truncation_is_detected() {
        let (g, _) = figure_4_16_graph();
        let bytes = encode_graph(&g);
        for cut in [5, bytes.len() / 2, bytes.len() - 1] {
            assert!(decode_graph(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn collection_stream_round_trips() {
        let (g1, _) = figure_4_16_graph();
        let g2 = figure_4_7_paper();
        let bytes = encode_collection([&g1, &g2]);
        let back = decode_collection(&bytes).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].edge_count(), 6);
        assert_eq!(back[1].node_count(), 3);
        // Truncated stream fails cleanly.
        assert!(decode_collection(&bytes[..bytes.len() - 2]).is_err());
        assert!(decode_collection(&[]).unwrap().is_empty());
    }

    #[test]
    fn varint_extremes() {
        let mut out = Vec::new();
        for v in [0u64, 1, 127, 128, u32::MAX as u64, u64::MAX] {
            out.clear();
            put_varint(&mut out, v);
            let mut pos = 0;
            assert_eq!(get_varint(&out, &mut pos).unwrap(), v);
            assert_eq!(pos, out.len());
        }
        for i in [0i64, -1, 1, i64::MIN, i64::MAX] {
            assert_eq!(unzigzag(zigzag(i)), i);
        }
    }

    #[test]
    fn compactness_beats_display_text() {
        let (g, _) = figure_4_16_graph();
        let bin = encode_graph(&g).len();
        let text = g.to_string().len();
        assert!(bin < text, "binary {bin} vs text {text}");
    }
}
