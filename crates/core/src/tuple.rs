//! Tuples: the attribute payload of nodes, edges, and graphs.
//!
//! A tuple is "a list of name and value pairs" with "an optional tag that
//! denotes the tuple type" (paper §3.1), e.g. `<author name="A">` has tag
//! `author` and one attribute `name`.

use crate::value::Value;
use std::fmt;

/// An attribute tuple: optional tag + ordered name/value pairs.
///
/// Attribute order is preserved (it is part of the textual syntax) but
/// lookup is by name; tuples in this system are small (a handful of
/// attributes) so linear search beats a hash map.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Tuple {
    tag: Option<String>,
    attrs: Vec<(String, Value)>,
}

impl Tuple {
    /// The empty, untagged tuple.
    pub fn new() -> Self {
        Tuple::default()
    }

    /// An empty tuple with a tag, e.g. `<author>`.
    pub fn tagged(tag: impl Into<String>) -> Self {
        Tuple {
            tag: Some(tag.into()),
            attrs: Vec::new(),
        }
    }

    /// Builder-style: add (or overwrite) an attribute.
    pub fn with(mut self, name: impl Into<String>, value: impl Into<Value>) -> Self {
        self.set(name, value);
        self
    }

    /// The tuple's tag, if any.
    pub fn tag(&self) -> Option<&str> {
        self.tag.as_deref()
    }

    /// Sets the tuple's tag.
    pub fn set_tag(&mut self, tag: impl Into<String>) {
        self.tag = Some(tag.into());
    }

    /// Looks up an attribute by name.
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.attrs
            .iter()
            .find_map(|(n, v)| (n == name).then_some(v))
    }

    /// Sets an attribute, replacing any existing value under that name.
    pub fn set(&mut self, name: impl Into<String>, value: impl Into<Value>) {
        let name = name.into();
        let value = value.into();
        if let Some(slot) = self.attrs.iter_mut().find(|(n, _)| *n == name) {
            slot.1 = value;
        } else {
            self.attrs.push((name, value));
        }
    }

    /// Removes an attribute, returning its value.
    pub fn remove(&mut self, name: &str) -> Option<Value> {
        let idx = self.attrs.iter().position(|(n, _)| n == name)?;
        Some(self.attrs.remove(idx).1)
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        self.attrs.len()
    }

    /// True if the tuple has no attributes (it may still have a tag).
    pub fn is_empty(&self) -> bool {
        self.attrs.is_empty()
    }

    /// Iterates over `(name, value)` pairs in declaration order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.attrs.iter().map(|(n, v)| (n.as_str(), v))
    }

    /// Merges `other` into `self`; on name clashes `self` wins. Used when
    /// unifying nodes: the paper leaves attribute reconciliation open, and
    /// keeping the first binding matches its co-authorship example where
    /// unified nodes agree on the join attribute anyway.
    pub fn merge_from(&mut self, other: &Tuple) {
        if self.tag.is_none() {
            self.tag = other.tag.clone();
        }
        for (n, v) in other.iter() {
            if self.get(n).is_none() {
                self.set(n, v.clone());
            }
        }
    }

    /// Structural compatibility used by pattern tuples: every attribute in
    /// `self` (the pattern side) must exist in `target` with an equal
    /// value, and a pattern tag must equal the target tag.
    pub fn subsumes(&self, target: &Tuple) -> bool {
        if let Some(t) = &self.tag {
            if target.tag.as_deref() != Some(t.as_str()) {
                return false;
            }
        }
        self.iter().all(|(n, v)| target.get(n) == Some(v))
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<")?;
        let mut first = true;
        if let Some(t) = &self.tag {
            write!(f, "{t}")?;
            first = false;
        }
        for (n, v) in self.iter() {
            if !first {
                write!(f, " ")?;
            }
            write!(f, "{n}={v}")?;
            first = false;
        }
        write!(f, ">")
    }
}

impl<N: Into<String>, V: Into<Value>> FromIterator<(N, V)> for Tuple {
    fn from_iter<T: IntoIterator<Item = (N, V)>>(iter: T) -> Self {
        let mut t = Tuple::new();
        for (n, v) in iter {
            t.set(n, v);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_overwrite() {
        let mut t = Tuple::new();
        t.set("name", "A");
        t.set("year", 2006);
        assert_eq!(t.get("name"), Some(&Value::Str("A".into())));
        t.set("name", "B");
        assert_eq!(t.get("name"), Some(&Value::Str("B".into())));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn tagged_tuple_display() {
        let t = Tuple::tagged("author").with("name", "A");
        assert_eq!(t.to_string(), "<author name=\"A\">");
    }

    #[test]
    fn subsumption_requires_matching_tag_and_attrs() {
        let pat = Tuple::tagged("author");
        let node = Tuple::tagged("author").with("name", "A");
        let other = Tuple::new().with("name", "A");
        assert!(pat.subsumes(&node));
        assert!(!pat.subsumes(&other));

        let pat2 = Tuple::new().with("name", "A");
        assert!(pat2.subsumes(&node));
        assert!(!pat2.subsumes(&Tuple::tagged("author").with("name", "B")));
    }

    #[test]
    fn merge_prefers_existing() {
        let mut a = Tuple::new().with("x", 1);
        let b = Tuple::tagged("t").with("x", 2).with("y", 3);
        a.merge_from(&b);
        assert_eq!(a.get("x"), Some(&Value::Int(1)));
        assert_eq!(a.get("y"), Some(&Value::Int(3)));
        assert_eq!(a.tag(), Some("t"));
    }

    #[test]
    fn remove_and_from_iter() {
        let mut t: Tuple = vec![("a", 1), ("b", 2)].into_iter().collect();
        assert_eq!(t.remove("a"), Some(Value::Int(1)));
        assert_eq!(t.remove("a"), None);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }
}
