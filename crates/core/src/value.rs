//! Attribute values.
//!
//! GraphQL (He & Singh) annotates nodes, edges, and graphs with *tuples*:
//! lists of name/value pairs. The grammar of the paper (Appendix 4.A)
//! admits integer, float, and string literals; we additionally support
//! booleans since predicates produce them and `where` clauses may want to
//! store them.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// A scalar attribute value.
///
/// `Value` implements a *total* order (floats are ordered with
/// [`f64::total_cmp`]) so that values can be used as index keys in the
/// relational substrate and hashed in feasible-mate tables.
#[derive(Debug, Clone)]
pub enum Value {
    /// 64-bit signed integer literal, e.g. `year=2006`.
    Int(i64),
    /// 64-bit float literal.
    Float(f64),
    /// String literal, e.g. `name="A"`.
    Str(String),
    /// Boolean (result of predicate evaluation).
    Bool(bool),
}

impl Value {
    /// Returns the string contents if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the integer if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Returns the value as a float, coercing integers.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// Returns the boolean if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Truthiness used by `where` clauses: `Bool(b)` is `b`, any other
    /// value is an error at a higher level; this helper is lenient and
    /// treats non-zero numbers as true (SQL-ish), which the engine uses
    /// only after type checking.
    pub fn is_truthy(&self) -> bool {
        match self {
            Value::Bool(b) => *b,
            Value::Int(i) => *i != 0,
            Value::Float(f) => *f != 0.0,
            Value::Str(s) => !s.is_empty(),
        }
    }

    /// Name of the runtime type, for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Bool(_) => "bool",
        }
    }

    /// Numeric comparison with int/float coercion; falls back to the
    /// total order for same-typed values and returns `None` for
    /// incomparable mixes (e.g. string vs int), mirroring the paper's
    /// implicit dynamic typing.
    pub fn compare(&self, other: &Value) -> Option<Ordering> {
        use Value::*;
        match (self, other) {
            (Int(a), Int(b)) => Some(a.cmp(b)),
            (Str(a), Str(b)) => Some(a.cmp(b)),
            (Bool(a), Bool(b)) => Some(a.cmp(b)),
            (Float(a), Float(b)) => Some(float_cmp(*a, *b)),
            (Int(a), Float(b)) => Some(cmp_i64_f64(*a, *b)),
            (Float(a), Int(b)) => Some(cmp_i64_f64(*b, *a).reverse()),
            _ => None,
        }
    }

    /// Arithmetic addition with numeric coercion; string `+` concatenates.
    ///
    /// Integer arithmetic is *checked*: on i64 overflow the result is
    /// promoted to `Float` (approximate but correctly ordered) rather
    /// than silently wrapped, so predicates and composition-accumulated
    /// attributes never see a sign-flipped value.
    pub fn add(&self, other: &Value) -> Option<Value> {
        use Value::*;
        match (self, other) {
            (Int(a), Int(b)) => Some(a.checked_add(*b).map_or(Float(*a as f64 + *b as f64), Int)),
            (Str(a), Str(b)) => Some(Str(format!("{a}{b}"))),
            _ => Some(Float(self.as_float()? + other.as_float()?)),
        }
    }

    /// Arithmetic subtraction with numeric coercion; overflow promotes
    /// to `Float` (see [`Value::add`]).
    pub fn sub(&self, other: &Value) -> Option<Value> {
        use Value::*;
        match (self, other) {
            (Int(a), Int(b)) => Some(a.checked_sub(*b).map_or(Float(*a as f64 - *b as f64), Int)),
            _ => Some(Float(self.as_float()? - other.as_float()?)),
        }
    }

    /// Arithmetic multiplication with numeric coercion; overflow
    /// promotes to `Float` (see [`Value::add`]).
    pub fn mul(&self, other: &Value) -> Option<Value> {
        use Value::*;
        match (self, other) {
            (Int(a), Int(b)) => Some(a.checked_mul(*b).map_or(Float(*a as f64 * *b as f64), Int)),
            _ => Some(Float(self.as_float()? * other.as_float()?)),
        }
    }

    /// Arithmetic division; integer division by zero yields `None`, and
    /// the single overflowing case (`i64::MIN / -1`) promotes to `Float`
    /// (see [`Value::add`]).
    pub fn div(&self, other: &Value) -> Option<Value> {
        use Value::*;
        match (self, other) {
            (Int(a), Int(b)) => {
                if *b == 0 {
                    None
                } else {
                    Some(a.checked_div(*b).map_or(Float(*a as f64 / *b as f64), Int))
                }
            }
            _ => Some(Float(self.as_float()? / other.as_float()?)),
        }
    }
}

/// IEEE comparison where possible (so `-0.0 == 0.0`), total order as the
/// NaN fallback so `Value` can still implement `Ord`.
fn float_cmp(a: f64, b: f64) -> Ordering {
    a.partial_cmp(&b).unwrap_or_else(|| a.total_cmp(&b))
}

/// Exact comparison of an `i64` against an `f64`, without rounding the
/// integer through a lossy `as f64` cast.
///
/// For |i| ≥ 2^53 the cast collapses distinct integers onto the same
/// float, which made `Int(2^53) == Float(2^53) == Int(2^53 + 1)` while
/// `Int(2^53) < Int(2^53 + 1)` — an intransitive `Eq`/`Ord` that
/// corrupts B-tree keys and sort order. Here the float is split into
/// integral and fractional parts instead, so every comparison is exact.
///
/// NaN placement follows [`f64::total_cmp`] (used by `float_cmp` for
/// float/float NaN pairs): negative NaN sorts below every real, positive
/// NaN above, keeping the merged numeric order transitive.
fn cmp_i64_f64(a: i64, b: f64) -> Ordering {
    if b.is_nan() {
        return if b.is_sign_negative() {
            Ordering::Greater
        } else {
            Ordering::Less
        };
    }
    // All i64 lie strictly inside (-2^63 - 1, 2^63); floats at or beyond
    // those bounds (incl. ±inf) compare without looking at digits. Both
    // bounds are exactly representable, and -2^63 itself IS i64::MIN.
    const TWO_63: f64 = 9_223_372_036_854_775_808.0; // 2^63
    if b >= TWO_63 {
        return Ordering::Less;
    }
    if b < -TWO_63 {
        return Ordering::Greater;
    }
    // b ∈ [-2^63, 2^63): trunc(b) fits in i64 exactly.
    let t = b.trunc() as i64;
    match a.cmp(&t) {
        Ordering::Equal => {
            let frac = b - b.trunc();
            // frac carries b's sub-integer part; sign decides the order.
            if frac > 0.0 {
                Ordering::Less
            } else if frac < 0.0 {
                Ordering::Greater
            } else {
                Ordering::Equal
            }
        }
        ord => ord,
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.compare(other) == Some(Ordering::Equal)
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    /// Total order across types: bools < ints/floats (merged numerically)
    /// < strings. Needed so `Value` can key B-tree indexes.
    fn cmp(&self, other: &Self) -> Ordering {
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Bool(_) => 0,
                Value::Int(_) | Value::Float(_) => 1,
                Value::Str(_) => 2,
            }
        }
        match self.compare(other) {
            Some(ord) => ord,
            None => rank(self).cmp(&rank(other)),
        }
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Int(i) == Float(f) only when f represents i exactly, and then
        // (i as f64) == f bit-for-bit (after -0.0 normalization), so
        // hashing all numerics through the f64 bit pattern stays
        // consistent with Eq. Distinct huge ints that round to the same
        // float merely collide, which is harmless.
        match self {
            Value::Bool(b) => {
                state.write_u8(0);
                b.hash(state);
            }
            Value::Int(i) => {
                state.write_u8(1);
                state.write_u64((*i as f64).to_bits());
            }
            Value::Float(f) => {
                state.write_u8(1);
                // Normalize -0.0 to 0.0 for hashing consistency with Eq.
                let f = if *f == 0.0 { 0.0 } else { *f };
                state.write_u64(f.to_bits());
            }
            Value::Str(s) => {
                state.write_u8(2);
                s.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn int_float_equality_and_hash_agree() {
        let a = Value::Int(3);
        let b = Value::Float(3.0);
        assert_eq!(a, b);
        assert_eq!(hash_of(&a), hash_of(&b));
    }

    #[test]
    fn negative_zero_hashes_like_zero() {
        assert_eq!(Value::Float(-0.0), Value::Float(0.0));
        assert_eq!(hash_of(&Value::Float(-0.0)), hash_of(&Value::Float(0.0)));
    }

    #[test]
    fn cross_type_ordering_is_total() {
        let mut vs = [
            Value::Str("z".into()),
            Value::Int(-1),
            Value::Bool(true),
            Value::Float(0.5),
            Value::Str("a".into()),
            Value::Bool(false),
        ];
        vs.sort();
        assert_eq!(vs[0], Value::Bool(false));
        assert_eq!(vs[1], Value::Bool(true));
        assert_eq!(vs[2], Value::Int(-1));
        assert_eq!(vs[3], Value::Float(0.5));
        assert_eq!(vs[4], Value::Str("a".into()));
        assert_eq!(vs[5], Value::Str("z".into()));
    }

    #[test]
    fn arithmetic_coercion() {
        assert_eq!(Value::Int(2).add(&Value::Int(3)), Some(Value::Int(5)));
        assert_eq!(
            Value::Int(2).add(&Value::Float(0.5)),
            Some(Value::Float(2.5))
        );
        assert_eq!(
            Value::Str("ab".into()).add(&Value::Str("c".into())),
            Some(Value::Str("abc".into()))
        );
        assert_eq!(Value::Int(1).div(&Value::Int(0)), None);
        assert_eq!(Value::Int(7).div(&Value::Int(2)), Some(Value::Int(3)));
        assert_eq!(Value::Int(6).mul(&Value::Int(7)), Some(Value::Int(42)));
        assert_eq!(Value::Int(6).sub(&Value::Int(7)), Some(Value::Int(-1)));
    }

    /// Pre-fix, `Int` was compared to `Float` via a lossy `as f64` cast:
    /// `Int(2^53 + 1)` compared `Equal` to `Float(2^53)` even though
    /// `Int(2^53)` also equals `Float(2^53)` — intransitive.
    #[test]
    fn large_int_float_comparison_is_exact() {
        const P53: i64 = 1 << 53; // 9007199254740992; 2^53 + 1 rounds to it
        assert_eq!(Value::Int(P53), Value::Float(P53 as f64));
        assert!(Value::Int(P53 + 1) > Value::Float(P53 as f64));
        assert!(Value::Float(P53 as f64) < Value::Int(P53 + 1));
        // i64::MAX as f64 rounds UP to 2^63; the exact comparison knows
        // the integer is smaller.
        assert!(Value::Int(i64::MAX) < Value::Float(i64::MAX as f64));
        assert_eq!(Value::Int(i64::MIN), Value::Float(i64::MIN as f64));
        assert!(Value::Int(i64::MIN + 1) > Value::Float(i64::MIN as f64));
        // Fractional parts order correctly around an exact integer.
        assert!(Value::Int(3) < Value::Float(3.5));
        assert!(Value::Int(4) > Value::Float(3.5));
        assert!(Value::Int(-3) > Value::Float(-3.5));
        assert_eq!(Value::Int(0), Value::Float(-0.0));
        // Infinities and NaN bracket every integer (total_cmp placement).
        assert!(Value::Int(i64::MAX) < Value::Float(f64::INFINITY));
        assert!(Value::Int(i64::MIN) > Value::Float(f64::NEG_INFINITY));
        assert!(Value::Int(i64::MAX) < Value::Float(f64::NAN));
        assert!(Value::Int(i64::MIN) > Value::Float(-f64::NAN));
    }

    /// Pre-fix, i64 arithmetic wrapped: `i64::MAX + 1` yielded
    /// `Int(i64::MIN)` inside predicates. Now overflow promotes to
    /// `Float`, which stays on the correct side of the number line.
    #[test]
    fn integer_overflow_promotes_to_float() {
        let max = Value::Int(i64::MAX);
        let sum = max.add(&Value::Int(1)).unwrap();
        assert_eq!(sum, Value::Float(i64::MAX as f64 + 1.0));
        assert!(sum > max, "overflowed sum must not wrap negative");
        // i64::MIN - 1 rounds back to -2^63 as a float; the point is it
        // stays negative instead of wrapping to +i64::MAX.
        let diff = Value::Int(i64::MIN).sub(&Value::Int(1)).unwrap();
        assert_eq!(diff, Value::Float(-9_223_372_036_854_775_808.0));
        assert!(diff < Value::Int(0));
        let prod = Value::Int(i64::MAX).mul(&Value::Int(2)).unwrap();
        assert!(prod > Value::Int(i64::MAX));
        let quot = Value::Int(i64::MIN).div(&Value::Int(-1)).unwrap();
        assert_eq!(quot, Value::Float(9_223_372_036_854_775_808.0));
        // Non-overflowing arithmetic still returns exact ints.
        assert_eq!(
            Value::Int(i64::MAX).add(&Value::Int(-1)),
            Some(Value::Int(i64::MAX - 1))
        );
    }

    #[test]
    fn incomparable_types_return_none() {
        assert_eq!(Value::Int(1).compare(&Value::Str("1".into())), None);
        assert!(Value::Int(1) != Value::Str("1".into()));
    }

    #[test]
    fn truthiness() {
        assert!(Value::Bool(true).is_truthy());
        assert!(!Value::Bool(false).is_truthy());
        assert!(Value::Int(2).is_truthy());
        assert!(!Value::Int(0).is_truthy());
        assert!(!Value::Str(String::new()).is_truthy());
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Int(5).to_string(), "5");
        assert_eq!(Value::Str("x".into()).to_string(), "\"x\"");
        assert_eq!(Value::Bool(true).to_string(), "true");
    }
}
