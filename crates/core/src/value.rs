//! Attribute values.
//!
//! GraphQL (He & Singh) annotates nodes, edges, and graphs with *tuples*:
//! lists of name/value pairs. The grammar of the paper (Appendix 4.A)
//! admits integer, float, and string literals; we additionally support
//! booleans since predicates produce them and `where` clauses may want to
//! store them.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// A scalar attribute value.
///
/// `Value` implements a *total* order (floats are ordered with
/// [`f64::total_cmp`]) so that values can be used as index keys in the
/// relational substrate and hashed in feasible-mate tables.
#[derive(Debug, Clone)]
pub enum Value {
    /// 64-bit signed integer literal, e.g. `year=2006`.
    Int(i64),
    /// 64-bit float literal.
    Float(f64),
    /// String literal, e.g. `name="A"`.
    Str(String),
    /// Boolean (result of predicate evaluation).
    Bool(bool),
}

impl Value {
    /// Returns the string contents if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the integer if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Returns the value as a float, coercing integers.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// Returns the boolean if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Truthiness used by `where` clauses: `Bool(b)` is `b`, any other
    /// value is an error at a higher level; this helper is lenient and
    /// treats non-zero numbers as true (SQL-ish), which the engine uses
    /// only after type checking.
    pub fn is_truthy(&self) -> bool {
        match self {
            Value::Bool(b) => *b,
            Value::Int(i) => *i != 0,
            Value::Float(f) => *f != 0.0,
            Value::Str(s) => !s.is_empty(),
        }
    }

    /// Name of the runtime type, for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Bool(_) => "bool",
        }
    }

    /// Numeric comparison with int/float coercion; falls back to the
    /// total order for same-typed values and returns `None` for
    /// incomparable mixes (e.g. string vs int), mirroring the paper's
    /// implicit dynamic typing.
    pub fn compare(&self, other: &Value) -> Option<Ordering> {
        use Value::*;
        match (self, other) {
            (Int(a), Int(b)) => Some(a.cmp(b)),
            (Str(a), Str(b)) => Some(a.cmp(b)),
            (Bool(a), Bool(b)) => Some(a.cmp(b)),
            (Float(a), Float(b)) => Some(float_cmp(*a, *b)),
            (Int(a), Float(b)) => Some(float_cmp(*a as f64, *b)),
            (Float(a), Int(b)) => Some(float_cmp(*a, *b as f64)),
            _ => None,
        }
    }

    /// Arithmetic addition with numeric coercion; string `+` concatenates.
    pub fn add(&self, other: &Value) -> Option<Value> {
        use Value::*;
        match (self, other) {
            (Int(a), Int(b)) => Some(Int(a.wrapping_add(*b))),
            (Str(a), Str(b)) => Some(Str(format!("{a}{b}"))),
            _ => Some(Float(self.as_float()? + other.as_float()?)),
        }
    }

    /// Arithmetic subtraction with numeric coercion.
    pub fn sub(&self, other: &Value) -> Option<Value> {
        use Value::*;
        match (self, other) {
            (Int(a), Int(b)) => Some(Int(a.wrapping_sub(*b))),
            _ => Some(Float(self.as_float()? - other.as_float()?)),
        }
    }

    /// Arithmetic multiplication with numeric coercion.
    pub fn mul(&self, other: &Value) -> Option<Value> {
        use Value::*;
        match (self, other) {
            (Int(a), Int(b)) => Some(Int(a.wrapping_mul(*b))),
            _ => Some(Float(self.as_float()? * other.as_float()?)),
        }
    }

    /// Arithmetic division; integer division by zero yields `None`.
    pub fn div(&self, other: &Value) -> Option<Value> {
        use Value::*;
        match (self, other) {
            (Int(a), Int(b)) => {
                if *b == 0 {
                    None
                } else {
                    Some(Int(a.wrapping_div(*b)))
                }
            }
            _ => Some(Float(self.as_float()? / other.as_float()?)),
        }
    }
}

/// IEEE comparison where possible (so `-0.0 == 0.0`), total order as the
/// NaN fallback so `Value` can still implement `Ord`.
fn float_cmp(a: f64, b: f64) -> Ordering {
    a.partial_cmp(&b).unwrap_or_else(|| a.total_cmp(&b))
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.compare(other) == Some(Ordering::Equal)
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    /// Total order across types: bools < ints/floats (merged numerically)
    /// < strings. Needed so `Value` can key B-tree indexes.
    fn cmp(&self, other: &Self) -> Ordering {
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Bool(_) => 0,
                Value::Int(_) | Value::Float(_) => 1,
                Value::Str(_) => 2,
            }
        }
        match self.compare(other) {
            Some(ord) => ord,
            None => rank(self).cmp(&rank(other)),
        }
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Int(k) and Float(k as f64) compare equal, so they must hash
        // identically: hash all numerics through the f64 bit pattern.
        match self {
            Value::Bool(b) => {
                state.write_u8(0);
                b.hash(state);
            }
            Value::Int(i) => {
                state.write_u8(1);
                state.write_u64((*i as f64).to_bits());
            }
            Value::Float(f) => {
                state.write_u8(1);
                // Normalize -0.0 to 0.0 for hashing consistency with Eq.
                let f = if *f == 0.0 { 0.0 } else { *f };
                state.write_u64(f.to_bits());
            }
            Value::Str(s) => {
                state.write_u8(2);
                s.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn int_float_equality_and_hash_agree() {
        let a = Value::Int(3);
        let b = Value::Float(3.0);
        assert_eq!(a, b);
        assert_eq!(hash_of(&a), hash_of(&b));
    }

    #[test]
    fn negative_zero_hashes_like_zero() {
        assert_eq!(Value::Float(-0.0), Value::Float(0.0));
        assert_eq!(hash_of(&Value::Float(-0.0)), hash_of(&Value::Float(0.0)));
    }

    #[test]
    fn cross_type_ordering_is_total() {
        let mut vs = [
            Value::Str("z".into()),
            Value::Int(-1),
            Value::Bool(true),
            Value::Float(0.5),
            Value::Str("a".into()),
            Value::Bool(false),
        ];
        vs.sort();
        assert_eq!(vs[0], Value::Bool(false));
        assert_eq!(vs[1], Value::Bool(true));
        assert_eq!(vs[2], Value::Int(-1));
        assert_eq!(vs[3], Value::Float(0.5));
        assert_eq!(vs[4], Value::Str("a".into()));
        assert_eq!(vs[5], Value::Str("z".into()));
    }

    #[test]
    fn arithmetic_coercion() {
        assert_eq!(Value::Int(2).add(&Value::Int(3)), Some(Value::Int(5)));
        assert_eq!(
            Value::Int(2).add(&Value::Float(0.5)),
            Some(Value::Float(2.5))
        );
        assert_eq!(
            Value::Str("ab".into()).add(&Value::Str("c".into())),
            Some(Value::Str("abc".into()))
        );
        assert_eq!(Value::Int(1).div(&Value::Int(0)), None);
        assert_eq!(Value::Int(7).div(&Value::Int(2)), Some(Value::Int(3)));
        assert_eq!(Value::Int(6).mul(&Value::Int(7)), Some(Value::Int(42)));
        assert_eq!(Value::Int(6).sub(&Value::Int(7)), Some(Value::Int(-1)));
    }

    #[test]
    fn incomparable_types_return_none() {
        assert_eq!(Value::Int(1).compare(&Value::Str("1".into())), None);
        assert!(Value::Int(1) != Value::Str("1".into()));
    }

    #[test]
    fn truthiness() {
        assert!(Value::Bool(true).is_truthy());
        assert!(!Value::Bool(false).is_truthy());
        assert!(Value::Int(2).is_truthy());
        assert!(!Value::Int(0).is_truthy());
        assert!(!Value::Str(String::new()).is_truthy());
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Int(5).to_string(), "5");
        assert_eq!(Value::Str("x".into()).to_string(), "\"x\"");
        assert_eq!(Value::Bool(true).to_string(), "true");
    }
}
