//! Label interning: a `Value ↔ u32` dictionary plus compact interned
//! profiles for the matcher's hot kernels.
//!
//! The paper's own measurements (Figure 4.21a) show feasible-mate
//! pruning and pseudo-iso refinement dominating query time. Both
//! kernels compare node *labels*, and comparing `Value`s means string
//! comparisons and heap traffic. Interning every distinct label into a
//! dense `u32` turns those comparisons into integer compares, lets
//! candidate sets live in flat arrays, and enables the 64-bit
//! label-signature pre-filter of [`IdProfile`].
//!
//! Interning respects `Value` equality (`Int(3) == Float(3.0)` intern
//! to the same id), so every interned comparison is observably
//! equivalent to the `Value`-based one.

use crate::slab::Slab;
use crate::value::Value;
use rustc_hash::FxHashMap;

/// Sentinel id for "this node/edge carries no `label` attribute".
/// Never returned by [`LabelInterner::intern`].
pub const NO_LABEL: u32 = u32::MAX;

/// Sentinel id for "this label exists in the query but not in the data
/// graph": it compares unequal to every real id and to [`NO_LABEL`], so
/// a pattern constraint encoded as `IMPOSSIBLE_LABEL` can never match.
pub const IMPOSSIBLE_LABEL: u32 = u32::MAX - 1;

/// A dictionary of distinct label values, assigning dense `u32` ids in
/// first-seen order.
#[derive(Debug, Clone, Default)]
pub struct LabelInterner {
    ids: FxHashMap<Value, u32>,
    values: Vec<Value>,
}

impl LabelInterner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        LabelInterner::default()
    }

    /// Returns the id of `v`, interning it if unseen. Ids are dense and
    /// assigned in first-intern order; two `Value`s receive the same id
    /// iff they compare equal.
    pub fn intern(&mut self, v: &Value) -> u32 {
        if let Some(&id) = self.ids.get(v) {
            return id;
        }
        let id = self.values.len() as u32;
        debug_assert!(id < IMPOSSIBLE_LABEL, "interner id space exhausted");
        self.ids.insert(v.clone(), id);
        self.values.push(v.clone());
        id
    }

    /// The id of `v` if it was interned, else `None`.
    pub fn lookup(&self, v: &Value) -> Option<u32> {
        self.ids.get(v).copied()
    }

    /// Like [`LabelInterner::lookup`] but mapping unknown labels to
    /// [`IMPOSSIBLE_LABEL`] — the encoding used for query-side
    /// constraints, where "unknown to the data graph" means "matches
    /// nothing".
    pub fn encode_constraint(&self, v: &Value) -> u32 {
        self.lookup(v).unwrap_or(IMPOSSIBLE_LABEL)
    }

    /// The value behind an id (panics on sentinel or out-of-range ids).
    pub fn resolve(&self, id: u32) -> &Value {
        &self.values[id as usize]
    }

    /// Number of distinct interned labels.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if nothing was interned.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Encodes a [`crate::Profile`] as an [`IdProfile`], or `None` if
    /// some label of the profile was never interned (for a query-side
    /// profile that means no data profile can subsume it).
    pub fn encode_profile(&self, profile: &crate::Profile) -> Option<IdProfile> {
        let mut ids = Vec::with_capacity(profile.len());
        for l in profile.labels() {
            ids.push(self.lookup(l)?);
        }
        Some(IdProfile::from_ids(ids))
    }
}

/// The bit a label id occupies in a 64-bit profile signature.
#[inline]
fn signature_bit(id: u32) -> u64 {
    1u64 << (id & 63)
}

/// A profile re-encoded on interned ids: the sorted multiset of label
/// ids plus a 64-bit signature (bit `id mod 64` set for every id
/// present).
///
/// The signature is a *sound* pre-filter for multiset containment: if
/// `p ⊆ q` as multisets then every id of `p` occurs in `q`, hence every
/// signature bit of `p` is set in `q` — so `sig(p) & !sig(q) != 0`
/// proves non-containment without touching the id arrays. Hash
/// collisions (two labels sharing `id mod 64`) only make the filter
/// pass when it could have rejected; the exact two-pointer test behind
/// it restores precision, so the final verdict is byte-identical to the
/// `Value`-profile test.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IdProfile {
    /// Owned for freshly computed profiles; a zero-copy view into the
    /// checkpoint segment for mapped adoption ([`IdProfile::from_sorted`]).
    ids: Slab<u32>,
    signature: u64,
}

impl IdProfile {
    /// Builds a profile from label ids (sorted internally).
    pub fn from_ids(mut ids: Vec<u32>) -> Self {
        ids.sort_unstable();
        let signature = ids.iter().fold(0u64, |s, &id| s | signature_bit(id));
        IdProfile {
            ids: ids.into(),
            signature,
        }
    }

    /// Adopts an already-sorted id slab without copying — the reopen
    /// path for checkpointed profiles (which are stored sorted). Fails
    /// if the slab is not sorted, so a corrupted segment cannot smuggle
    /// in a profile whose two-pointer containment merge would
    /// misbehave.
    pub fn from_sorted(ids: Slab<u32>) -> Result<Self, &'static str> {
        if ids.windows(2).any(|w| w[0] > w[1]) {
            return Err("profile ids not sorted");
        }
        let signature = ids.iter().fold(0u64, |s, &id| s | signature_bit(id));
        Ok(IdProfile { ids, signature })
    }

    /// Number of labels (with multiplicity).
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True if the profile has no labels.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// The sorted id multiset.
    pub fn ids(&self) -> &[u32] {
        &self.ids
    }

    /// The 64-bit label signature.
    pub fn signature(&self) -> u64 {
        self.signature
    }

    /// The O(1) screen of [`IdProfile::subsumed_by`]: true when the
    /// length or signature test alone proves `self ⊄ other`, without
    /// touching the id arrays. Exposed so instrumentation can attribute
    /// rejections to the signature filter vs. the exact merge.
    #[inline]
    pub fn signature_rejects(&self, other: &IdProfile) -> bool {
        self.ids.len() > other.ids.len() || (self.signature & !other.signature) != 0
    }

    /// The exact two-pointer multiset-containment merge, *without* the
    /// signature screen. Only meaningful after
    /// [`IdProfile::signature_rejects`] returned false (the screen is
    /// sound, so running the merge anyway would agree).
    pub fn contained_exact(&self, other: &IdProfile) -> bool {
        let mut j = 0;
        for &id in self.ids.iter() {
            while j < other.ids.len() && other.ids[j] < id {
                j += 1;
            }
            if j >= other.ids.len() || other.ids[j] != id {
                return false;
            }
            j += 1;
        }
        true
    }

    /// Multiset containment `self ⊆ other`, rejecting in O(1) via the
    /// signature before running the exact two-pointer merge.
    pub fn subsumed_by(&self, other: &IdProfile) -> bool {
        !self.signature_rejects(other) && self.contained_exact(other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Profile;

    #[test]
    fn interning_respects_value_equality() {
        let mut it = LabelInterner::new();
        let a = it.intern(&Value::Str("A".into()));
        let b = it.intern(&Value::Str("B".into()));
        assert_ne!(a, b);
        assert_eq!(it.intern(&Value::Str("A".into())), a);
        // Int/Float equality classes collapse to one id.
        let three = it.intern(&Value::Int(3));
        assert_eq!(it.intern(&Value::Float(3.0)), three);
        assert_eq!(it.len(), 3);
        assert_eq!(it.resolve(a), &Value::Str("A".into()));
        assert_eq!(it.lookup(&Value::Str("Z".into())), None);
        assert_eq!(
            it.encode_constraint(&Value::Str("Z".into())),
            IMPOSSIBLE_LABEL
        );
    }

    #[test]
    fn id_profile_containment_matches_value_profiles() {
        let mut it = LabelInterner::new();
        let labels = ["A", "B", "B", "C", "D"];
        for l in labels {
            it.intern(&Value::Str(l.into()));
        }
        let enc = |ls: &[&str]| {
            it.encode_profile(&Profile::from_labels(ls.iter().map(|&l| Value::from(l))))
                .unwrap()
        };
        let cases: [(&[&str], &[&str]); 5] = [
            (&["A", "B"], &["A", "B", "C"]),
            (&["B", "B"], &["A", "B", "C"]),
            (&["B", "B"], &["B", "C", "B"]),
            (&[], &["A"]),
            (&["A", "C", "D"], &["A", "B", "C", "D"]),
        ];
        for (p, q) in cases {
            let vp = Profile::from_labels(p.iter().map(|&l| Value::from(l)));
            let vq = Profile::from_labels(q.iter().map(|&l| Value::from(l)));
            assert_eq!(
                enc(p).subsumed_by(&enc(q)),
                vp.subsumed_by(&vq),
                "{p:?} vs {q:?}"
            );
            assert_eq!(
                enc(q).subsumed_by(&enc(p)),
                vq.subsumed_by(&vp),
                "{q:?} vs {p:?}"
            );
        }
    }

    #[test]
    fn signature_rejects_disjoint_profiles() {
        let p = IdProfile::from_ids(vec![1]);
        let q = IdProfile::from_ids(vec![2, 3]);
        assert_ne!(p.signature() & !q.signature(), 0, "pre-filter must fire");
        assert!(!p.subsumed_by(&q));
        assert!(p.subsumed_by(&p));
    }

    #[test]
    fn encode_profile_fails_on_unknown_label() {
        let mut it = LabelInterner::new();
        it.intern(&Value::Str("A".into()));
        let known = Profile::from_labels(vec![Value::from("A")]);
        let unknown = Profile::from_labels(vec![Value::from("A"), Value::from("Z")]);
        assert!(it.encode_profile(&known).is_some());
        assert!(it.encode_profile(&unknown).is_none());
    }

    #[test]
    fn signature_bits_wrap_mod_64() {
        let p = IdProfile::from_ids(vec![0, 64]);
        assert_eq!(p.signature(), 1, "ids 0 and 64 share bit 0");
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
    }
}
