//! Plan-cache keys and feedback statistics for the query planner.
//!
//! The §4.4 optimizer derives a join order from *static* label
//! frequencies ([`crate::stats::GraphStats`]). This module supplies the
//! two ingredients that let an engine close the loop described in
//! ROADMAP item 3:
//!
//! 1. **Shape keys** ([`shape_key`]): a renaming-invariant hash of a
//!    query motif, computed by Weisfeiler–Leman color refinement over
//!    per-node/per-edge *seeds* (label + predicate fingerprints supplied
//!    by the caller). Two motifs that are isomorphic up to variable
//!    renaming hash to the same key; motifs differing in labels or
//!    predicates get different seeds and therefore (modulo hash
//!    collisions) different keys.
//! 2. **Feedback statistics** ([`FeedbackStore`]): observed candidate
//!    sizes, pruning ratios, and cardinalities from executed queries,
//!    recorded per (shape, graph scope) and per (scope, label). Later
//!    plannings consult these before falling back to the static
//!    `GraphStats` probabilities.
//!
//! [`PlanCache`] is the generation-stamped memo map both are keyed
//! into; it mirrors the engine's index-cache lifecycle (entries are
//! invalidated wholesale when the underlying graphs mutate).

use rustc_hash::FxHashMap;
use std::hash::Hasher;

/// Seeds describing a query motif for [`shape_key`]: everything that
/// distinguishes two pattern nodes/edges *except* their variable names
/// and declaration order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ShapeDesc {
    /// Whether the pattern graph is directed.
    pub directed: bool,
    /// One seed per pattern node: a hash of its label/attribute
    /// constraints and attached predicates (with the node's own index
    /// masked out so renamings agree).
    pub node_seeds: Vec<u64>,
    /// One entry per pattern edge `(src, dst, seed)`; the seed hashes
    /// the edge's constraints the same way.
    pub edges: Vec<(u32, u32, u64)>,
    /// Hash of whole-pattern context that is not attached to a single
    /// node or edge (e.g. global predicates).
    pub global_seed: u64,
}

fn mix(h: &mut rustc_hash::FxHasher, x: u64) {
    h.write_u64(x);
}

fn hash_of(parts: &[u64]) -> u64 {
    let mut h = rustc_hash::FxHasher::default();
    for &p in parts {
        mix(&mut h, p);
    }
    h.finish()
}

/// Renaming-invariant hash of a motif: 1-dimensional Weisfeiler–Leman
/// color refinement run for `|V|` rounds, folded together with the
/// sorted multiset of edge colors and the global seed.
///
/// WL refinement is a sound but incomplete isomorphism test: motifs
/// isomorphic up to renaming *always* collide (the guarantee the plan
/// cache needs — a cached plan slot is shared), while distinct motifs
/// collide only in the rare WL-equivalent case, which costs a stale
/// estimate, never a wrong answer (plans are validated per instance).
pub fn shape_key(desc: &ShapeDesc) -> u64 {
    let n = desc.node_seeds.len();
    let mut colors: Vec<u64> = desc.node_seeds.clone();
    let mut next: Vec<u64> = vec![0; n];
    for _round in 0..n {
        for (v, slot) in next.iter_mut().enumerate() {
            // Gather the multiset of (edge seed, neighbor color,
            // direction) signals incident to v and fold it in sorted
            // order so neighbor enumeration order is irrelevant.
            let mut sig: Vec<u64> = Vec::new();
            for &(a, b, es) in &desc.edges {
                let (a, b) = (a as usize, b as usize);
                if a == v {
                    sig.push(hash_of(&[es, colors[b], u64::from(desc.directed)]));
                } else if b == v {
                    sig.push(hash_of(&[es, colors[a], 2 * u64::from(desc.directed)]));
                }
            }
            sig.sort_unstable();
            let mut parts = vec![colors[v]];
            parts.extend(sig);
            *slot = hash_of(&parts);
        }
        std::mem::swap(&mut colors, &mut next);
    }
    let mut edge_part: Vec<u64> = desc
        .edges
        .iter()
        .map(|&(a, b, es)| {
            let (ca, cb) = (colors[a as usize], colors[b as usize]);
            let (lo, hi) = if desc.directed || ca <= cb {
                (ca, cb)
            } else {
                (cb, ca)
            };
            hash_of(&[es, lo, hi])
        })
        .collect();
    edge_part.sort_unstable();
    let mut node_part = colors;
    node_part.sort_unstable();
    let mut parts = vec![u64::from(desc.directed), desc.global_seed, n as u64];
    parts.extend(node_part);
    parts.extend(edge_part);
    hash_of(&parts)
}

/// Cache key for one compiled plan: the renaming-invariant shape, an
/// exact instance fingerprint (so symmetric renamings that share a
/// shape slot never swap plans), the graph scope the plan was compiled
/// against, and the cache generation at compile time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PlanKey {
    /// [`shape_key`] of the motif.
    pub shape: u64,
    /// Exact fingerprint of this motif instance (variable order kept).
    pub instance: u64,
    /// Which graph of a collection the plan targets (σ evaluates
    /// graphs of a collection concurrently; their statistics differ).
    pub graph_scope: u64,
    /// Generation of the owning [`PlanCache`] when compiled.
    pub generation: u64,
}

/// Generation-stamped plan memo map, mirroring the engine index cache:
/// `invalidate` bumps the generation and drops every entry, so plans
/// compiled against a mutated graph can never be returned.
#[derive(Debug, Clone)]
pub struct PlanCache<P> {
    generation: u64,
    map: FxHashMap<PlanKey, P>,
    hits: u64,
    misses: u64,
}

impl<P> Default for PlanCache<P> {
    fn default() -> Self {
        PlanCache::new()
    }
}

impl<P> PlanCache<P> {
    /// Creates an empty cache at generation 0.
    pub fn new() -> Self {
        PlanCache {
            generation: 0,
            map: FxHashMap::default(),
            hits: 0,
            misses: 0,
        }
    }

    /// Current generation; keys built against older generations miss.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Drops all entries and bumps the generation (graph mutated).
    pub fn invalidate(&mut self) {
        self.generation += 1;
        self.map.clear();
    }

    /// Raises the generation to `generation` (no-op when already
    /// there or past it), dropping entries on an actual advance. Used
    /// to pin plan-cache keys to an externally allocated snapshot
    /// epoch, so `PlanKey::generation` and the `GraphSnapshot`
    /// generation the engine hands out agree.
    pub fn advance_to(&mut self, generation: u64) {
        if generation > self.generation {
            self.generation = generation;
            self.map.clear();
        }
    }

    /// Looks up a compiled plan, counting the hit or miss.
    pub fn lookup(&mut self, key: &PlanKey) -> Option<&P> {
        if key.generation != self.generation {
            self.misses += 1;
            return None;
        }
        match self.map.get(key) {
            Some(p) => {
                self.hits += 1;
                Some(p)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts (or replaces) the plan for `key`; stale-generation keys
    /// are ignored.
    pub fn insert(&mut self, key: PlanKey, plan: P) {
        if key.generation == self.generation {
            self.map.insert(key, plan);
        }
    }

    /// (hits, misses) observed so far.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no plans are cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// Observed execution feedback for one motif shape on one graph scope.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ShapeFeedback {
    /// Number of recorded runs.
    pub runs: u64,
    /// Sum of pre-refinement candidate-set sizes (last run).
    pub candidate_space: u64,
    /// Candidates removed by refinement (last run).
    pub refine_removed: u64,
    /// Bipartite checks refinement spent (last run).
    pub refine_checks: u64,
    /// Post-refinement candidate-set sizes per pattern node (last run).
    pub refined_sizes: Vec<u32>,
    /// DFS steps taken (last run).
    pub search_steps: u64,
    /// Matches produced (last run).
    pub matches: u64,
    /// The optimizer's estimated final cardinality for the run, kept so
    /// later plannings can report (and correct for) estimate error.
    pub estimated_size: f64,
    /// Label-bucket sizes summed over pattern nodes whose retrieval
    /// went through the secondary property index (last run).
    pub probe_bucket: u64,
    /// Ids those index probes produced, summed the same way (last run).
    pub probe_hits: u64,
}

impl ShapeFeedback {
    /// Fraction of the candidate space refinement removed in the last
    /// run; `None` until a run with a non-empty space is recorded.
    pub fn refine_yield(&self) -> Option<f64> {
        if self.candidate_space == 0 {
            return None;
        }
        Some(self.refine_removed as f64 / self.candidate_space as f64)
    }

    /// Observed-vs-estimated cardinality ratio of the last run, clamped
    /// away from zero so callers can divide by it.
    pub fn cardinality_error(&self) -> Option<f64> {
        if self.runs == 0 || self.estimated_size <= 0.0 {
            return None;
        }
        Some((self.matches as f64).max(1e-9) / self.estimated_size.max(1e-9))
    }

    /// Fraction of probed label buckets the index probes actually
    /// surfaced in the last run — the observed predicate selectivity.
    /// `None` until a run routed at least one node through the index.
    pub fn probe_hit_fraction(&self) -> Option<f64> {
        if self.probe_bucket == 0 {
            return None;
        }
        Some(self.probe_hits as f64 / self.probe_bucket as f64)
    }
}

/// Observed candidate counts for one node label on one graph scope:
/// `estimated` comes from static [`crate::stats::GraphStats`]
/// frequencies, `observed` from the actual retrieval phase.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LabelFeedback {
    /// Number of recorded observations.
    pub runs: u64,
    /// Static estimate of the candidate count (label frequency).
    pub estimated: u64,
    /// Observed post-pruning candidate count (last run).
    pub observed: u64,
}

impl LabelFeedback {
    /// `observed / estimated` correction factor, `None` when the static
    /// estimate was zero (nothing to correct).
    pub fn correction(&self) -> Option<f64> {
        if self.estimated == 0 {
            return None;
        }
        Some(self.observed as f64 / self.estimated as f64)
    }
}

/// Per-shape and per-label feedback recorded from executed queries.
/// Scoped by `(graph_scope)` so concurrent per-graph σ workers write
/// disjoint slots; cleared together with the plan cache on mutation.
#[derive(Debug, Clone, Default)]
pub struct FeedbackStore {
    shapes: FxHashMap<(u64, u64), ShapeFeedback>,
    labels: FxHashMap<(u64, u32), LabelFeedback>,
}

impl FeedbackStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        FeedbackStore::default()
    }

    /// Records one run's feedback for `(shape, scope)`; last-run fields
    /// are overwritten, `runs` accumulates.
    pub fn record_shape(&mut self, shape: u64, scope: u64, mut fb: ShapeFeedback) {
        let slot = self.shapes.entry((shape, scope)).or_default();
        fb.runs = slot.runs + 1;
        *slot = fb;
    }

    /// Feedback for `(shape, scope)` if any run was recorded.
    pub fn shape(&self, shape: u64, scope: u64) -> Option<&ShapeFeedback> {
        self.shapes.get(&(shape, scope))
    }

    /// Records an estimated-vs-observed candidate count for a label.
    pub fn record_label(&mut self, scope: u64, label: u32, estimated: u64, observed: u64) {
        let slot = self.labels.entry((scope, label)).or_default();
        slot.runs += 1;
        slot.estimated = estimated;
        slot.observed = observed;
    }

    /// Label feedback for `(scope, label)` if observed.
    pub fn label(&self, scope: u64, label: u32) -> Option<&LabelFeedback> {
        self.labels.get(&(scope, label))
    }

    /// Drops everything (graph mutated; observations are stale).
    pub fn clear(&mut self) {
        self.shapes.clear();
        self.labels.clear();
    }

    /// Iterates all recorded shape slots as `((shape, scope), feedback)`
    /// — the checkpoint serializer's view of the store.
    pub fn shapes(&self) -> impl Iterator<Item = (&(u64, u64), &ShapeFeedback)> {
        self.shapes.iter()
    }

    /// Iterates all recorded label slots as `((scope, label), feedback)`.
    pub fn labels(&self) -> impl Iterator<Item = (&(u64, u32), &LabelFeedback)> {
        self.labels.iter()
    }

    /// Installs a shape slot verbatim (including its `runs` count) —
    /// the checkpoint *restore* path, as opposed to
    /// [`FeedbackStore::record_shape`] which models one new run.
    pub fn restore_shape(&mut self, shape: u64, scope: u64, fb: ShapeFeedback) {
        self.shapes.insert((shape, scope), fb);
    }

    /// Installs a label slot verbatim (restore path).
    pub fn restore_label(&mut self, scope: u64, label: u32, fb: LabelFeedback) {
        self.labels.insert((scope, label), fb);
    }

    /// Number of shape slots recorded.
    pub fn shape_count(&self) -> usize {
        self.shapes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn desc(nodes: &[u64], edges: &[(u32, u32, u64)]) -> ShapeDesc {
        ShapeDesc {
            directed: false,
            node_seeds: nodes.to_vec(),
            edges: edges.to_vec(),
            global_seed: 0,
        }
    }

    #[test]
    fn renaming_invariance_triangle() {
        // Same labeled triangle, nodes declared in two different orders.
        let a = desc(&[1, 2, 3], &[(0, 1, 9), (1, 2, 9), (2, 0, 9)]);
        let b = desc(&[3, 1, 2], &[(1, 2, 9), (2, 0, 9), (0, 1, 9)]);
        assert_eq!(shape_key(&a), shape_key(&b));
    }

    #[test]
    fn label_changes_key() {
        let a = desc(&[1, 2, 3], &[(0, 1, 9), (1, 2, 9)]);
        let b = desc(&[1, 2, 4], &[(0, 1, 9), (1, 2, 9)]);
        assert_ne!(shape_key(&a), shape_key(&b));
    }

    #[test]
    fn structure_changes_key() {
        let path = desc(&[1, 1, 1], &[(0, 1, 9), (1, 2, 9)]);
        let tri = desc(&[1, 1, 1], &[(0, 1, 9), (1, 2, 9), (2, 0, 9)]);
        assert_ne!(shape_key(&path), shape_key(&tri));
    }

    #[test]
    fn direction_changes_key() {
        let und = desc(&[1, 2], &[(0, 1, 9)]);
        let dir = ShapeDesc {
            directed: true,
            ..und.clone()
        };
        assert_ne!(shape_key(&und), shape_key(&dir));
    }

    #[test]
    fn cache_generation_invalidates() {
        let mut c: PlanCache<u32> = PlanCache::new();
        let key = PlanKey {
            shape: 1,
            instance: 2,
            graph_scope: 0,
            generation: c.generation(),
        };
        assert!(c.lookup(&key).is_none());
        c.insert(key, 7);
        assert_eq!(c.lookup(&key).copied(), Some(7));
        c.invalidate();
        assert!(c.lookup(&key).is_none(), "stale generation must miss");
        assert!(c.is_empty());
        assert_eq!(c.stats(), (1, 2));
    }

    #[test]
    fn feedback_roundtrip() {
        let mut f = FeedbackStore::new();
        f.record_shape(
            5,
            0,
            ShapeFeedback {
                candidate_space: 100,
                refine_removed: 1,
                estimated_size: 8.0,
                matches: 4,
                probe_bucket: 40,
                probe_hits: 10,
                ..ShapeFeedback::default()
            },
        );
        let fb = f.shape(5, 0).unwrap();
        assert_eq!(fb.runs, 1);
        assert!((fb.refine_yield().unwrap() - 0.01).abs() < 1e-12);
        assert!((fb.cardinality_error().unwrap() - 0.5).abs() < 1e-12);
        assert!((fb.probe_hit_fraction().unwrap() - 0.25).abs() < 1e-12);
        assert_eq!(ShapeFeedback::default().probe_hit_fraction(), None);
        assert!(f.shape(5, 1).is_none(), "scopes are disjoint");
        f.record_label(0, 3, 10, 4);
        assert!((f.label(0, 3).unwrap().correction().unwrap() - 0.4).abs() < 1e-12);
        f.clear();
        assert_eq!(f.shape_count(), 0);
    }
}
