//! Binary operators of the GraphQL predicate grammar
//! (`| & + - * / == != > >= < <=`, Appendix 4.A).

use std::fmt;

/// A binary operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// Logical or (`|`).
    Or,
    /// Logical and (`&`).
    And,
    /// Addition / string concatenation.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
    /// Equality.
    Eq,
    /// Inequality.
    Ne,
    /// Greater-than.
    Gt,
    /// Greater-or-equal.
    Ge,
    /// Less-than.
    Lt,
    /// Less-or-equal.
    Le,
}

impl BinOp {
    /// Precedence level, higher binds tighter: `|` < `&` < comparisons
    /// < `+ -` < `* /`. (The printed grammar is flat; see DESIGN.md.)
    pub fn precedence(self) -> u8 {
        match self {
            BinOp::Or => 1,
            BinOp::And => 2,
            BinOp::Eq | BinOp::Ne | BinOp::Gt | BinOp::Ge | BinOp::Lt | BinOp::Le => 3,
            BinOp::Add | BinOp::Sub => 4,
            BinOp::Mul | BinOp::Div => 5,
        }
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Or => "|",
            BinOp::And => "&",
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precedence_ordering() {
        assert!(BinOp::Or.precedence() < BinOp::And.precedence());
        assert!(BinOp::And.precedence() < BinOp::Eq.precedence());
        assert!(BinOp::Eq.precedence() < BinOp::Add.precedence());
        assert!(BinOp::Add.precedence() < BinOp::Mul.precedence());
    }

    #[test]
    fn display_round_trip() {
        assert_eq!(BinOp::Le.to_string(), "<=");
        assert_eq!(BinOp::Or.to_string(), "|");
    }
}
