//! Collections of graphs.
//!
//! "A graph database consists of one or more collections of graphs"
//! (paper §3.1). Unlike relations, graphs in a collection need not share
//! structure or attributes; they are processed uniformly by binding to a
//! graph pattern.

use crate::graph::Graph;

/// An ordered collection of graphs — the operand/result type of every
/// algebra operator.
#[derive(Debug, Clone, Default)]
pub struct GraphCollection {
    /// Collection name (the `doc("DBLP")` identifier), if any.
    pub name: Option<String>,
    graphs: Vec<Graph>,
}

impl GraphCollection {
    /// Creates an empty, unnamed collection.
    pub fn new() -> Self {
        GraphCollection::default()
    }

    /// Creates an empty collection with a name.
    pub fn named(name: impl Into<String>) -> Self {
        GraphCollection {
            name: Some(name.into()),
            graphs: Vec::new(),
        }
    }

    /// Wraps a single large graph as a one-element collection. "A single
    /// large graph and a collection of graphs are treated in the same
    /// way" (§3.3).
    pub fn from_graph(g: Graph) -> Self {
        GraphCollection {
            name: g.name.clone(),
            graphs: vec![g],
        }
    }

    /// Adds a graph.
    pub fn push(&mut self, g: Graph) {
        self.graphs.push(g);
    }

    /// Number of member graphs.
    pub fn len(&self) -> usize {
        self.graphs.len()
    }

    /// True if there are no member graphs.
    pub fn is_empty(&self) -> bool {
        self.graphs.is_empty()
    }

    /// Member access by position.
    pub fn get(&self, i: usize) -> Option<&Graph> {
        self.graphs.get(i)
    }

    /// Iterates over member graphs.
    pub fn iter(&self) -> impl Iterator<Item = &Graph> {
        self.graphs.iter()
    }

    /// Consumes the collection, yielding its graphs.
    pub fn into_vec(self) -> Vec<Graph> {
        self.graphs
    }

    /// Total node count across members (used by experiment reporting).
    pub fn total_nodes(&self) -> usize {
        self.graphs.iter().map(|g| g.node_count()).sum()
    }

    /// Total edge count across members.
    pub fn total_edges(&self) -> usize {
        self.graphs.iter().map(|g| g.edge_count()).sum()
    }
}

impl From<Vec<Graph>> for GraphCollection {
    fn from(graphs: Vec<Graph>) -> Self {
        GraphCollection { name: None, graphs }
    }
}

impl FromIterator<Graph> for GraphCollection {
    fn from_iter<T: IntoIterator<Item = Graph>>(iter: T) -> Self {
        GraphCollection {
            name: None,
            graphs: iter.into_iter().collect(),
        }
    }
}

impl IntoIterator for GraphCollection {
    type Item = Graph;
    type IntoIter = std::vec::IntoIter<Graph>;
    fn into_iter(self) -> Self::IntoIter {
        self.graphs.into_iter()
    }
}

impl<'a> IntoIterator for &'a GraphCollection {
    type Item = &'a Graph;
    type IntoIter = std::slice::Iter<'a, Graph>;
    fn into_iter(self) -> Self::IntoIter {
        self.graphs.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::Tuple;

    #[test]
    fn collection_basics() {
        let mut c = GraphCollection::named("DBLP");
        assert!(c.is_empty());
        let mut g = Graph::named("G1");
        g.add_node(Tuple::new());
        c.push(g.clone());
        c.push(g);
        assert_eq!(c.len(), 2);
        assert_eq!(c.total_nodes(), 2);
        assert_eq!(c.total_edges(), 0);
        assert_eq!(c.name.as_deref(), Some("DBLP"));
        assert!(c.get(0).is_some());
        assert!(c.get(5).is_none());
        assert_eq!(c.iter().count(), 2);
        assert_eq!(c.into_vec().len(), 2);
    }

    #[test]
    fn from_single_graph_keeps_name() {
        let g = Graph::named("big");
        let c = GraphCollection::from_graph(g);
        assert_eq!(c.len(), 1);
        assert_eq!(c.name.as_deref(), Some("big"));
    }

    #[test]
    fn from_iterator() {
        let c: GraphCollection = (0..3).map(|_| Graph::new()).collect();
        assert_eq!(c.len(), 3);
        let v: Vec<&Graph> = (&c).into_iter().collect();
        assert_eq!(v.len(), 3);
    }
}
