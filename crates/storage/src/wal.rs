//! Append-only write-ahead log with checksummed, length-prefixed
//! records and torn-tail recovery.
//!
//! On-disk format — a flat sequence of frames:
//!
//! ```text
//! [len: u32-le][crc: u32-le][payload: len bytes]
//! ```
//!
//! `crc` is FNV-1a over the payload (the same checksum every
//! GQL1-family frame carries). The payload is a tag byte plus fields
//! encoded with the shared varint/string primitives; collection and
//! variable values are embedded as complete GQL1 frames, so replay is
//! **idempotent**: re-applying a record that a newer checkpoint already
//! folded in simply rewrites the same value.
//!
//! Replay-on-open walks the frames sequentially. The first frame that
//! is short (torn write), fails its CRC (bit flip, garbage), or does
//! not decode ends the committed prefix: the file is truncated back to
//! the last good frame boundary and the records before it are
//! returned. A `kill -9` at any byte therefore loses at most the
//! in-flight record — never committed state.

use crate::Result;
use gql_core::storage::{fnv1a, get_str, put_str, StorageError};
use gql_core::Obs;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

/// One logged mutation. Values are carried in full (not as deltas), so
/// replay order only has to respect per-key last-writer-wins.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// A collection was created or replaced; `payload` is the
    /// `encode_collection` bytes of its full new contents.
    PutCollection {
        /// Collection name.
        name: String,
        /// `gql_core::storage::encode_collection` frame stream.
        payload: Vec<u8>,
    },
    /// A collection was dropped (tombstone; the next checkpoint's
    /// compaction pass makes the deletion physical).
    DeleteCollection {
        /// Collection name.
        name: String,
    },
    /// A top-level variable was bound; `payload` is the `encode_graph`
    /// bytes of its full new value.
    PutVar {
        /// Variable name.
        name: String,
        /// `gql_core::storage::encode_graph` frame.
        payload: Vec<u8>,
    },
}

const TAG_PUT_COLLECTION: u8 = 1;
const TAG_DELETE_COLLECTION: u8 = 2;
const TAG_PUT_VAR: u8 = 3;

impl WalRecord {
    /// Serializes the record payload (tag + fields, no framing).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            WalRecord::PutCollection { name, payload } => {
                out.push(TAG_PUT_COLLECTION);
                put_str(&mut out, name);
                out.extend_from_slice(payload);
            }
            WalRecord::DeleteCollection { name } => {
                out.push(TAG_DELETE_COLLECTION);
                put_str(&mut out, name);
            }
            WalRecord::PutVar { name, payload } => {
                out.push(TAG_PUT_VAR);
                put_str(&mut out, name);
                out.extend_from_slice(payload);
            }
        }
        out
    }

    /// Deserializes a payload written by [`WalRecord::encode`].
    pub fn decode(buf: &[u8]) -> Result<WalRecord> {
        let tag = *buf.first().ok_or(StorageError::Truncated)?;
        let mut pos = 1;
        let name = get_str(buf, &mut pos)?;
        match tag {
            TAG_PUT_COLLECTION => Ok(WalRecord::PutCollection {
                name,
                payload: buf[pos..].to_vec(),
            }),
            TAG_DELETE_COLLECTION => {
                if pos != buf.len() {
                    return Err(StorageError::Malformed("delete trailing bytes").into());
                }
                Ok(WalRecord::DeleteCollection { name })
            }
            TAG_PUT_VAR => Ok(WalRecord::PutVar {
                name,
                payload: buf[pos..].to_vec(),
            }),
            _ => Err(StorageError::Malformed("wal record tag").into()),
        }
    }
}

/// The open write-ahead log file, positioned at its committed end.
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
    len: u64,
    obs: Option<Arc<Obs>>,
}

impl Wal {
    /// Opens (creating if absent) the log at `path`, replays the
    /// committed prefix, truncates any torn tail, and returns the
    /// decoded records in append order.
    pub fn open(path: &Path) -> Result<(Wal, Vec<WalRecord>)> {
        Wal::open_observed(path, None)
    }

    /// [`Wal::open`] with a metrics sink attached: replayed frames,
    /// torn-tail truncations, append/fsync latency, and the committed
    /// size gauge are recorded into `obs` for the lifetime of the log.
    pub fn open_observed(path: &Path, obs: Option<Arc<Obs>>) -> Result<(Wal, Vec<WalRecord>)> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        let (records, good_end) = scan(&bytes);
        if (good_end as u64) < bytes.len() as u64 {
            file.set_len(good_end as u64)?;
            file.sync_all()?;
            if let Some(obs) = &obs {
                obs.add("storage.wal.torn_tail", 1);
            }
        }
        file.seek(SeekFrom::Start(good_end as u64))?;
        if let Some(obs) = &obs {
            obs.add("storage.wal.replay_frames", records.len() as u64);
            obs.set_gauge("storage.wal_size", good_end as u64);
        }
        Ok((
            Wal {
                file,
                path: path.to_path_buf(),
                len: good_end as u64,
                obs,
            },
            records,
        ))
    }

    /// Appends one record and syncs it to disk before returning: once
    /// `append` succeeds, the record survives any crash.
    pub fn append(&mut self, rec: &WalRecord) -> Result<()> {
        let _append_span = self.obs.as_ref().map(|o| o.span("storage.wal.append"));
        let payload = rec.encode();
        let mut frame = Vec::with_capacity(8 + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&fnv1a(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        self.file.write_all(&frame)?;
        let fsync_start = Instant::now();
        self.file.sync_data()?;
        self.len += frame.len() as u64;
        if let Some(obs) = &self.obs {
            obs.record("storage.wal.fsync", fsync_start.elapsed());
            obs.add("storage.wal.appends", 1);
            obs.add("storage.wal.append_bytes", frame.len() as u64);
            obs.set_gauge("storage.wal_size", self.len);
        }
        Ok(())
    }

    /// Truncates the log to empty — called after a checkpoint has made
    /// every logged record durable elsewhere.
    pub fn reset(&mut self) -> Result<()> {
        self.file.set_len(0)?;
        self.file.seek(SeekFrom::Start(0))?;
        self.file.sync_all()?;
        self.len = 0;
        if let Some(obs) = &self.obs {
            obs.set_gauge("storage.wal_size", 0);
        }
        Ok(())
    }

    /// Committed size in bytes.
    pub fn size(&self) -> u64 {
        self.len
    }

    /// Path of the log file.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Walks the frame sequence; returns the decoded committed prefix and
/// the byte offset it ends at (everything after is a torn tail).
fn scan(bytes: &[u8]) -> (Vec<WalRecord>, usize) {
    let mut records = Vec::new();
    let mut pos = 0usize;
    while let Some(header) = bytes.get(pos..pos + 8) {
        let len = u32::from_le_bytes(header[0..4].try_into().expect("8-byte slice")) as usize;
        let crc = u32::from_le_bytes(header[4..8].try_into().expect("8-byte slice"));
        let Some(payload) = bytes.get(pos + 8..pos + 8 + len) else {
            break; // short payload: torn tail
        };
        if fnv1a(payload) != crc {
            break; // corrupted frame: everything after is suspect
        }
        let Ok(rec) = WalRecord::decode(payload) else {
            break; // CRC-valid but undecodable: treat as torn
        };
        records.push(rec);
        pos += 8 + len;
    }
    // Any break above leaves `pos` at the start of the torn tail.
    (records, pos)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("gql-wal-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::PutCollection {
                name: "db".into(),
                payload: vec![1, 2, 3, 4],
            },
            WalRecord::DeleteCollection { name: "old".into() },
            WalRecord::PutVar {
                name: "Q".into(),
                payload: vec![9, 9],
            },
        ]
    }

    #[test]
    fn append_then_reopen_replays_in_order() {
        let dir = tmpdir("replay");
        let path = dir.join("wal.log");
        let (mut wal, initial) = Wal::open(&path).unwrap();
        assert!(initial.is_empty());
        for r in sample_records() {
            wal.append(&r).unwrap();
        }
        drop(wal);
        let (_, replayed) = Wal::open(&path).unwrap();
        assert_eq!(replayed, sample_records());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Truncating the file at every byte boundary of the final record
    /// must recover exactly the records before it.
    #[test]
    fn torn_tail_truncates_to_last_committed_record() {
        let dir = tmpdir("torn");
        let path = dir.join("wal.log");
        let (mut wal, _) = Wal::open(&path).unwrap();
        for r in sample_records() {
            wal.append(&r).unwrap();
        }
        drop(wal);
        let full = std::fs::read(&path).unwrap();
        // Find where the last frame starts by re-scanning two records.
        let (recs, _) = scan(&full);
        assert_eq!(recs.len(), 3);
        let mut two = 0usize;
        for _ in 0..2 {
            let len = u32::from_le_bytes(full[two..two + 4].try_into().unwrap()) as usize;
            two += 8 + len;
        }
        for cut in two..full.len() {
            std::fs::write(&path, &full[..cut]).unwrap();
            let (_, replayed) = Wal::open(&path).unwrap();
            assert_eq!(replayed, sample_records()[..2], "cut at {cut}");
            // And the file was physically truncated to the good prefix.
            assert_eq!(std::fs::read(&path).unwrap().len(), two, "cut at {cut}");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Flipping any byte of the final frame (header or payload) must
    /// drop that record and keep the prefix.
    #[test]
    fn bit_flips_in_final_record_are_rejected() {
        let dir = tmpdir("flip");
        let path = dir.join("wal.log");
        let (mut wal, _) = Wal::open(&path).unwrap();
        for r in sample_records() {
            wal.append(&r).unwrap();
        }
        drop(wal);
        let full = std::fs::read(&path).unwrap();
        let mut two = 0usize;
        for _ in 0..2 {
            let len = u32::from_le_bytes(full[two..two + 4].try_into().unwrap()) as usize;
            two += 8 + len;
        }
        for i in two..full.len() {
            let mut corrupted = full.clone();
            corrupted[i] ^= 0xff;
            std::fs::write(&path, &corrupted).unwrap();
            let (_, replayed) = Wal::open(&path).unwrap();
            // A flipped length byte may make the frame short (torn) or
            // mismatch the CRC; either way record 3 must not survive,
            // and records 1-2 must.
            assert_eq!(replayed, sample_records()[..2], "flip at {i}");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reset_empties_the_log() {
        let dir = tmpdir("reset");
        let path = dir.join("wal.log");
        let (mut wal, _) = Wal::open(&path).unwrap();
        wal.append(&sample_records()[0]).unwrap();
        assert!(wal.size() > 0);
        wal.reset().unwrap();
        assert_eq!(wal.size(), 0);
        wal.append(&sample_records()[1]).unwrap();
        drop(wal);
        let (_, replayed) = Wal::open(&path).unwrap();
        assert_eq!(replayed, vec![sample_records()[1].clone()]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn record_codec_round_trips_and_rejects_bad_tags() {
        for r in sample_records() {
            assert_eq!(WalRecord::decode(&r.encode()).unwrap(), r);
        }
        assert!(WalRecord::decode(&[]).is_err());
        assert!(WalRecord::decode(&[77, 0]).is_err());
    }
}
