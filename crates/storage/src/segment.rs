//! Page-aligned checkpoint segments with a checksummed section
//! directory.
//!
//! Layout:
//!
//! ```text
//! header   magic "GSG1" (4) | version u32-le | sections u32-le
//!          | dir_len u32-le | dir_crc u32-le            (20 bytes)
//! dir      per section: kind str | name str
//!          | offset u64-le | len u64-le | crc u32-le
//! payloads each starting on a 4096-byte boundary
//! ```
//!
//! `dir_crc` is FNV-1a over the directory bytes; each section's `crc`
//! covers its payload. Offsets are absolute and fixed-width so the
//! directory's size is independent of where the payloads land — which
//! lets [`SegmentWriter`] reserve the header and directory up front and
//! stream section payloads straight to the file through a fixed-size
//! buffer with an incremental CRC, never materializing a section (let
//! alone the whole segment) in memory.
//!
//! The read side is a [`Segment`] over any [`ByteBuffer`] — an owned
//! byte vector or a memory-mapped checkpoint file
//! ([`crate::mmap::SegmentMap`]). Payloads start on 4096-byte
//! boundaries, so a mapped segment hands out page-aligned slices the
//! core's `Slab<T>` can adopt without copying. Verification has two
//! modes: [`Segment::open`] with `verify_sections = true` checks every
//! payload CRC up front (the right call when the bytes were just read
//! into memory anyway), while `false` checks only the header and
//! directory — per-section CRCs stay available via
//! [`Section::verify`] for callers that decode lazily, and are skipped
//! for sections whose decoded structure is validated instead.

use crate::Result;
use gql_core::storage::{fnv1a, fnv1a_update, get_str, put_str, ByteSink, StorageError, FNV_BASIS};
use gql_core::{ByteBuffer, OwnedBytes};
use std::io::{Seek, SeekFrom, Write};
use std::sync::Arc;

/// Section payload alignment (and the assumed page size).
pub const PAGE_SIZE: usize = 4096;

/// Size of the [`SegmentWriter`] staging buffer: payload bytes are
/// CRC'd as they arrive and flushed to the file in chunks of this size.
const STREAM_BUF: usize = 64 * 1024;

const MAGIC: &[u8; 4] = b"GSG1";
const VERSION: u32 = 2;
const HEADER_LEN: usize = 20;

/// One directory entry: a typed, named, checksummed payload span.
#[derive(Debug, Clone)]
struct SectionEntry {
    kind: String,
    name: String,
    offset: u64,
    len: u64,
    crc: u32,
}

fn encode_dir<'a, I>(entries: I) -> Vec<u8>
where
    I: Iterator<Item = (&'a str, &'a str, u64, u64, u32)>,
{
    let mut dir = Vec::new();
    for (kind, name, offset, len, crc) in entries {
        put_str(&mut dir, kind);
        put_str(&mut dir, name);
        dir.extend_from_slice(&offset.to_le_bytes());
        dir.extend_from_slice(&len.to_le_bytes());
        dir.extend_from_slice(&crc.to_le_bytes());
    }
    dir
}

fn align_up(n: usize) -> usize {
    n.div_ceil(PAGE_SIZE) * PAGE_SIZE
}

/// A [`ByteSink`] that also knows its position within the section being
/// written. The codec's raw-array encoding pads to 8-byte boundaries
/// *relative to the section start* (sections themselves start on page
/// boundaries), and needs this position to do it identically whether
/// the sink is a plain `Vec<u8>` or a [`SegmentWriter`] streaming to
/// disk.
pub trait SectionSink: ByteSink {
    /// Bytes written to the current section so far.
    fn pos(&self) -> usize;
}

impl SectionSink for Vec<u8> {
    fn pos(&self) -> usize {
        self.len()
    }
}

/// Streams a segment to a `Write + Seek` target: declare every section
/// up front (the directory's size depends only on the kind/name
/// strings), then write each section's payload in declared order
/// through the [`ByteSink`] interface. Payload bytes are checksummed
/// incrementally and flushed through a fixed-size buffer; `finish`
/// seeks back and fills in the real header and directory.
///
/// I/O errors are stashed internally (the `ByteSink` methods are
/// infallible by design) and surfaced by [`SegmentWriter::finish`].
#[derive(Debug)]
pub struct SegmentWriter<W: Write + Seek> {
    w: W,
    declared: Vec<(String, String)>,
    done: Vec<SectionEntry>,
    pos: u64,
    section_start: u64,
    section_len: u64,
    crc: u32,
    buf: Vec<u8>,
    in_section: bool,
    err: Option<std::io::Error>,
}

impl<W: Write + Seek> SegmentWriter<W> {
    /// Starts a segment that will contain exactly `sections` (kind,
    /// name) payloads, written in this order. Reserves the header and
    /// directory region (zero-filled for now) and positions the writer
    /// at the first payload page.
    pub fn create(mut w: W, sections: &[(&str, &str)]) -> std::io::Result<SegmentWriter<W>> {
        let dir_len = encode_dir(sections.iter().map(|&(k, n)| (k, n, 0, 0, 0))).len();
        let data_start = align_up(HEADER_LEN + dir_len);
        w.write_all(&vec![0u8; data_start])?;
        Ok(SegmentWriter {
            w,
            declared: sections
                .iter()
                .map(|&(k, n)| (k.to_string(), n.to_string()))
                .collect(),
            done: Vec::with_capacity(sections.len()),
            pos: data_start as u64,
            section_start: data_start as u64,
            section_len: 0,
            crc: FNV_BASIS,
            buf: Vec::with_capacity(STREAM_BUF),
            in_section: false,
            err: None,
        })
    }

    /// Begins the next declared section; must match the declaration
    /// order given to [`SegmentWriter::create`].
    pub fn begin_section(&mut self, kind: &str, name: &str) {
        assert!(!self.in_section, "begin_section while a section is open");
        let expect = self
            .declared
            .get(self.done.len())
            .expect("more sections written than declared");
        assert!(
            expect.0 == kind && expect.1 == name,
            "section order mismatch: declared {expect:?}, writing ({kind:?}, {name:?})"
        );
        self.section_start = self.pos;
        self.section_len = 0;
        self.crc = FNV_BASIS;
        self.in_section = true;
    }

    /// Ends the current section: flushes the staging buffer, records
    /// the directory entry, and pads to the next page boundary.
    pub fn end_section(&mut self) {
        assert!(self.in_section, "end_section without begin_section");
        self.flush_buf();
        let (kind, name) = self.declared[self.done.len()].clone();
        self.done.push(SectionEntry {
            kind,
            name,
            offset: self.section_start,
            len: self.section_len,
            crc: self.crc,
        });
        let pad = align_up(self.pos as usize) - self.pos as usize;
        if pad > 0 {
            self.write_raw(&vec![0u8; pad]);
        }
        self.in_section = false;
    }

    /// Writes the real header and directory and returns the underlying
    /// writer (so callers can fsync the file), or the first I/O error
    /// hit anywhere along the way.
    pub fn finish(mut self) -> Result<W> {
        assert!(!self.in_section, "finish with a section still open");
        assert_eq!(
            self.done.len(),
            self.declared.len(),
            "finish before all declared sections were written"
        );
        if let Some(e) = self.err.take() {
            return Err(e.into());
        }
        let dir = encode_dir(
            self.done
                .iter()
                .map(|e| (e.kind.as_str(), e.name.as_str(), e.offset, e.len, e.crc)),
        );
        let mut head = Vec::with_capacity(HEADER_LEN + dir.len());
        head.extend_from_slice(MAGIC);
        head.extend_from_slice(&VERSION.to_le_bytes());
        head.extend_from_slice(&(self.done.len() as u32).to_le_bytes());
        head.extend_from_slice(&(dir.len() as u32).to_le_bytes());
        head.extend_from_slice(&fnv1a(&dir).to_le_bytes());
        head.extend_from_slice(&dir);
        self.w.seek(SeekFrom::Start(0))?;
        self.w.write_all(&head)?;
        self.w.flush()?;
        Ok(self.w)
    }

    fn flush_buf(&mut self) {
        if self.buf.is_empty() || self.err.is_some() {
            self.buf.clear();
            return;
        }
        if let Err(e) = self.w.write_all(&self.buf) {
            self.err = Some(e);
        }
        self.pos += self.buf.len() as u64;
        self.buf.clear();
    }

    /// Writes bytes that belong to the file layout but not to any
    /// section's checksummed payload (padding).
    fn write_raw(&mut self, data: &[u8]) {
        debug_assert!(self.buf.is_empty());
        if self.err.is_none() {
            if let Err(e) = self.w.write_all(data) {
                self.err = Some(e);
            }
        }
        self.pos += data.len() as u64;
    }
}

impl<W: Write + Seek> ByteSink for SegmentWriter<W> {
    fn put_bytes(&mut self, data: &[u8]) {
        debug_assert!(self.in_section, "payload bytes outside a section");
        self.crc = fnv1a_update(self.crc, data);
        self.section_len += data.len() as u64;
        if self.buf.len() + data.len() > STREAM_BUF {
            self.flush_buf();
        }
        if data.len() >= STREAM_BUF {
            // Oversized write: bypass staging, stream it directly.
            if self.err.is_none() {
                if let Err(e) = self.w.write_all(data) {
                    self.err = Some(e);
                }
            }
            self.pos += data.len() as u64;
        } else {
            self.buf.extend_from_slice(data);
        }
    }
}

impl<W: Write + Seek> SectionSink for SegmentWriter<W> {
    fn pos(&self) -> usize {
        self.section_len as usize
    }
}

/// Accumulates sections in memory and assembles the final segment
/// bytes. A convenience wrapper over [`SegmentWriter`] for callers that
/// already hold the payloads; anything producing large payloads should
/// stream through [`SegmentWriter`] directly.
#[derive(Debug, Default)]
pub struct SegmentBuilder {
    sections: Vec<(String, String, Vec<u8>)>,
}

impl SegmentBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        SegmentBuilder::default()
    }

    /// Adds one section (kept in insertion order).
    pub fn push(&mut self, kind: &str, name: &str, payload: Vec<u8>) {
        self.sections.push((kind.into(), name.into(), payload));
    }

    /// Assembles the segment: header, checksummed directory, and
    /// page-aligned payloads. Byte-identical to streaming the same
    /// payloads through [`SegmentWriter`] (it is the same code path).
    pub fn finish(self) -> Vec<u8> {
        let declared: Vec<(&str, &str)> = self
            .sections
            .iter()
            .map(|(k, n, _)| (k.as_str(), n.as_str()))
            .collect();
        let cursor = std::io::Cursor::new(Vec::new());
        let mut w = SegmentWriter::create(cursor, &declared).expect("in-memory write");
        for (kind, name, payload) in &self.sections {
            w.begin_section(kind, name);
            w.put_bytes(payload);
            w.end_section();
        }
        w.finish().expect("in-memory write").into_inner()
    }
}

/// A parsed segment over owned or mapped bytes. Header, directory CRC,
/// span bounds, and payload alignment are always verified at open;
/// payload CRCs are verified up front or lazily depending on the open
/// mode (see the module docs).
#[derive(Debug)]
pub struct Segment {
    buf: Arc<dyn ByteBuffer>,
    dir: Vec<SectionEntry>,
}

/// A handle to one section of a [`Segment`]: its identity, payload
/// bytes, absolute position (for zero-copy adoption), and on-demand
/// checksum verification.
#[derive(Debug, Clone, Copy)]
pub struct Section<'a> {
    seg: &'a Segment,
    entry: &'a SectionEntry,
}

impl<'a> Section<'a> {
    /// The section's kind tag.
    pub fn kind(&self) -> &'a str {
        &self.entry.kind
    }

    /// The section's name.
    pub fn name(&self) -> &'a str {
        &self.entry.name
    }

    /// The payload bytes.
    pub fn bytes(&self) -> &'a [u8] {
        let lo = self.entry.offset as usize;
        &self.seg.buf.bytes()[lo..lo + self.entry.len as usize]
    }

    /// Absolute byte offset of the payload within the segment buffer —
    /// always a multiple of [`PAGE_SIZE`], which is what lets typed
    /// slabs adopt mapped payload spans directly.
    pub fn base(&self) -> usize {
        self.entry.offset as usize
    }

    /// Verifies this section's payload CRC. Cheap relative to decoding
    /// and O(section), not O(file).
    pub fn verify(&self) -> Result<()> {
        if fnv1a(self.bytes()) != self.entry.crc {
            return Err(StorageError::Corrupt.into());
        }
        Ok(())
    }
}

impl Segment {
    /// Parses and fully verifies an owned byte vector (every payload
    /// CRC checked up front). The right entry point when the bytes were
    /// read into memory anyway.
    pub fn parse(buf: Vec<u8>) -> Result<Segment> {
        Segment::open(Arc::new(OwnedBytes(buf)), true)
    }

    /// Opens a segment over any byte buffer. Magic, version, directory
    /// checksum, span bounds, and payload alignment are always
    /// verified. With `verify_sections` every payload CRC is checked
    /// too (touching every byte — faulting in the whole file when
    /// mapped); without it, payload checksums are left to
    /// [`Section::verify`] at access time.
    pub fn open(buf: Arc<dyn ByteBuffer>, verify_sections: bool) -> Result<Segment> {
        let bytes = buf.bytes();
        if bytes.len() < HEADER_LEN {
            return Err(StorageError::Truncated.into());
        }
        if &bytes[..4] != MAGIC {
            return Err(StorageError::BadMagic.into());
        }
        let word = |i: usize| u32::from_le_bytes(bytes[i..i + 4].try_into().expect("bounds"));
        if word(4) != VERSION {
            return Err(StorageError::Malformed("segment version").into());
        }
        let n_sections = word(8) as usize;
        let dir_len = word(12) as usize;
        let dir_crc = word(16);
        let dir_end = HEADER_LEN
            .checked_add(dir_len)
            .ok_or(StorageError::Truncated)?;
        if dir_end > bytes.len() {
            return Err(StorageError::Truncated.into());
        }
        let dir_bytes = &bytes[HEADER_LEN..dir_end];
        if fnv1a(dir_bytes) != dir_crc {
            return Err(StorageError::Corrupt.into());
        }
        let mut dir = Vec::with_capacity(n_sections.min(1024));
        let mut pos = 0usize;
        for _ in 0..n_sections {
            let kind = get_str(dir_bytes, &mut pos)?;
            let name = get_str(dir_bytes, &mut pos)?;
            let end = pos.checked_add(20).ok_or(StorageError::Truncated)?;
            if end > dir_bytes.len() {
                return Err(StorageError::Truncated.into());
            }
            let offset = u64::from_le_bytes(dir_bytes[pos..pos + 8].try_into().expect("bounds"));
            let len = u64::from_le_bytes(dir_bytes[pos + 8..pos + 16].try_into().expect("bounds"));
            let crc = u32::from_le_bytes(dir_bytes[pos + 16..end].try_into().expect("bounds"));
            pos = end;
            let span_end = offset.checked_add(len).ok_or(StorageError::Truncated)?;
            if span_end > bytes.len() as u64 {
                return Err(StorageError::Truncated.into());
            }
            if !(offset as usize).is_multiple_of(PAGE_SIZE) {
                return Err(StorageError::Malformed("unaligned section").into());
            }
            if verify_sections && fnv1a(&bytes[offset as usize..span_end as usize]) != crc {
                return Err(StorageError::Corrupt.into());
            }
            dir.push(SectionEntry {
                kind,
                name,
                offset,
                len,
                crc,
            });
        }
        if pos != dir_bytes.len() {
            return Err(StorageError::Malformed("directory trailing bytes").into());
        }
        Ok(Segment { buf, dir })
    }

    /// The backing buffer — what zero-copy slabs hold to keep a mapped
    /// segment alive.
    pub fn buffer(&self) -> &Arc<dyn ByteBuffer> {
        &self.buf
    }

    /// The section with this kind and name, if present.
    pub fn find(&self, kind: &str, name: &str) -> Option<Section<'_>> {
        self.dir
            .iter()
            .find(|e| e.kind == kind && e.name == name)
            .map(|entry| Section { seg: self, entry })
    }

    /// The payload of the section with this kind and name, if present
    /// (no checksum verification — see [`Section::verify`]).
    pub fn section(&self, kind: &str, name: &str) -> Option<&[u8]> {
        self.find(kind, name).map(|s| s.bytes())
    }

    /// All sections in directory order.
    pub fn sections(&self) -> impl Iterator<Item = Section<'_>> {
        self.dir.iter().map(|entry| Section { seg: self, entry })
    }

    /// Number of sections.
    pub fn len(&self) -> usize {
        self.dir.len()
    }

    /// Total size of the backing file in bytes (header + directory +
    /// payloads) — what the `storage.live_segment_bytes` gauge reports.
    pub fn byte_len(&self) -> usize {
        self.buf.bytes().len()
    }

    /// True when the segment has no sections.
    pub fn is_empty(&self) -> bool {
        self.dir.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<u8> {
        let mut b = SegmentBuilder::new();
        b.push("collection", "db", vec![1; 10]);
        b.push("var", "Q", vec![2; PAGE_SIZE + 3]); // spans pages
        b.push("meta", "options", vec![]);
        b.finish()
    }

    #[test]
    fn sections_round_trip_and_are_page_aligned() {
        let bytes = sample();
        let seg = Segment::parse(bytes).unwrap();
        assert_eq!(seg.len(), 3);
        assert_eq!(seg.section("collection", "db").unwrap(), &[1u8; 10][..]);
        assert_eq!(
            seg.section("var", "Q").unwrap(),
            &vec![2u8; PAGE_SIZE + 3][..]
        );
        assert_eq!(seg.section("meta", "options").unwrap(), &[] as &[u8]);
        assert!(seg.section("collection", "other").is_none());
        let kinds: Vec<&str> = seg.sections().map(|s| s.kind()).collect();
        assert_eq!(kinds, ["collection", "var", "meta"]);
        for s in seg.sections() {
            assert!(s.base().is_multiple_of(PAGE_SIZE));
            s.verify().unwrap();
        }
    }

    #[test]
    fn empty_segment_round_trips() {
        let seg = Segment::parse(SegmentBuilder::new().finish()).unwrap();
        assert!(seg.is_empty());
    }

    #[test]
    fn streaming_writer_matches_builder_bytes() {
        // Many small puts through the streaming writer produce the same
        // file as one builder push — the incremental CRC and the
        // staging buffer are invisible in the output.
        let payload: Vec<u8> = (0..(3 * STREAM_BUF + 17))
            .map(|i| (i % 251) as u8)
            .collect();
        let mut b = SegmentBuilder::new();
        b.push("collection", "db", payload.clone());
        b.push("meta", "options", vec![7, 8, 9]);
        let built = b.finish();

        let mut w = SegmentWriter::create(
            std::io::Cursor::new(Vec::new()),
            &[("collection", "db"), ("meta", "options")],
        )
        .unwrap();
        w.begin_section("collection", "db");
        for chunk in payload.chunks(13) {
            w.put_bytes(chunk);
        }
        w.end_section();
        w.begin_section("meta", "options");
        w.put_bytes(&[7]);
        w.put_bytes(&[8, 9]);
        w.end_section();
        let streamed = w.finish().unwrap().into_inner();
        assert_eq!(built, streamed);
    }

    #[test]
    fn lazy_open_defers_payload_checksums() {
        let bytes = sample();
        let seg = Segment::parse(bytes.clone()).unwrap();
        let payload_pos = seg.find("var", "Q").unwrap().base() + 1;
        let mut bad = bytes;
        bad[payload_pos] ^= 0xff;
        // Eager open sees the corruption immediately...
        assert!(Segment::parse(bad.clone()).is_err());
        // ...lazy open defers it to the section's own verify.
        let lazy = Segment::open(Arc::new(OwnedBytes(bad)), false).unwrap();
        assert!(lazy.find("var", "Q").unwrap().verify().is_err());
        lazy.find("collection", "db").unwrap().verify().unwrap();
        // Header/directory corruption is still caught at open.
        let mut bad_dir = sample();
        bad_dir[HEADER_LEN + 2] ^= 0xff;
        assert!(Segment::open(Arc::new(OwnedBytes(bad_dir)), false).is_err());
    }

    #[test]
    fn corruption_anywhere_is_detected() {
        let bytes = sample();
        // Flip a byte at a sample of positions across header,
        // directory, padding, and payloads. Padding flips are the one
        // place corruption is invisible — no checksummed data lives
        // there — so only assert detection where data actually lives.
        let seg = Segment::parse(bytes.clone()).unwrap();
        let mut data_spans: Vec<(usize, usize)> = vec![(0, HEADER_LEN + 64)];
        for e in &seg.dir {
            data_spans.push((e.offset as usize, (e.offset + e.len) as usize));
        }
        for (lo, hi) in data_spans {
            if hi <= lo {
                continue; // empty payload: no checksummed bytes to flip
            }
            for i in [lo, (lo + hi) / 2, hi - 1] {
                if i >= bytes.len() {
                    continue;
                }
                let mut bad = bytes.clone();
                bad[i] ^= 0xff;
                if bad == bytes {
                    continue; // flip landed on its own value
                }
                assert!(Segment::parse(bad).is_err(), "flip at {i} undetected");
            }
        }
        // Truncation at every page boundary and a few interior cuts.
        for cut in [0, 3, HEADER_LEN, HEADER_LEN + 5, PAGE_SIZE, bytes.len() - 1] {
            assert!(Segment::parse(bytes[..cut].to_vec()).is_err(), "cut {cut}");
        }
    }
}
