//! Page-aligned checkpoint segments with a checksummed section
//! directory.
//!
//! Layout:
//!
//! ```text
//! header   magic "GSG1" (4) | version u32-le | sections u32-le
//!          | dir_len u32-le | dir_crc u32-le            (20 bytes)
//! dir      per section: kind str | name str
//!          | offset u64-le | len u64-le | crc u32-le
//! payloads each starting on a 4096-byte boundary
//! ```
//!
//! `dir_crc` is FNV-1a over the directory bytes; each section's `crc`
//! covers its payload. Offsets are absolute and fixed-width so the
//! directory's size is independent of where the payloads land (the
//! builder can lay the file out in one pass). Payload alignment means
//! a future memory-mapped reader can hand out page-aligned slices of
//! the raw CSR arrays without copying; today's reader simply verifies
//! every checksum up front and serves sub-slices.

use crate::Result;
use gql_core::storage::{fnv1a, get_str, put_str, StorageError};

/// Section payload alignment (and the assumed page size).
pub const PAGE_SIZE: usize = 4096;

const MAGIC: &[u8; 4] = b"GSG1";
const VERSION: u32 = 1;
const HEADER_LEN: usize = 20;

/// One directory entry: a typed, named, checksummed payload span.
#[derive(Debug, Clone)]
struct SectionEntry {
    kind: String,
    name: String,
    offset: u64,
    len: u64,
}

/// Accumulates sections and assembles the final segment bytes.
#[derive(Debug, Default)]
pub struct SegmentBuilder {
    sections: Vec<(String, String, Vec<u8>)>,
}

impl SegmentBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        SegmentBuilder::default()
    }

    /// Adds one section (kept in insertion order).
    pub fn push(&mut self, kind: &str, name: &str, payload: Vec<u8>) {
        self.sections.push((kind.into(), name.into(), payload));
    }

    /// Assembles the segment: header, checksummed directory, and
    /// page-aligned payloads.
    pub fn finish(self) -> Vec<u8> {
        // Directory size is independent of payload placement (offsets
        // are fixed-width), so serialize it once with placeholder
        // offsets to learn its length, then again with real ones.
        let dir_len = Self::encode_dir(
            self.sections
                .iter()
                .map(|(k, n, p)| (k.as_str(), n.as_str(), 0, p)),
        )
        .len();
        let mut offset = align_up(HEADER_LEN + dir_len);
        let mut offsets = Vec::with_capacity(self.sections.len());
        for (_, _, payload) in &self.sections {
            offsets.push(offset as u64);
            offset = align_up(offset + payload.len());
        }
        let dir = Self::encode_dir(
            self.sections
                .iter()
                .zip(&offsets)
                .map(|((k, n, p), &off)| (k.as_str(), n.as_str(), off, p)),
        );
        debug_assert_eq!(dir.len(), dir_len);
        let total = offsets
            .last()
            .map_or(align_up(HEADER_LEN + dir_len), |&last| {
                last as usize + self.sections.last().map_or(0, |(_, _, p)| p.len())
            });
        let mut out = Vec::with_capacity(total);
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&(self.sections.len() as u32).to_le_bytes());
        out.extend_from_slice(&(dir.len() as u32).to_le_bytes());
        out.extend_from_slice(&fnv1a(&dir).to_le_bytes());
        out.extend_from_slice(&dir);
        for ((_, _, payload), &off) in self.sections.iter().zip(&offsets) {
            out.resize(off as usize, 0);
            out.extend_from_slice(payload);
        }
        out
    }

    fn encode_dir<'a, I>(entries: I) -> Vec<u8>
    where
        I: Iterator<Item = (&'a str, &'a str, u64, &'a Vec<u8>)>,
    {
        let mut dir = Vec::new();
        for (kind, name, offset, payload) in entries {
            put_str(&mut dir, kind);
            put_str(&mut dir, name);
            dir.extend_from_slice(&offset.to_le_bytes());
            dir.extend_from_slice(&(payload.len() as u64).to_le_bytes());
            dir.extend_from_slice(&fnv1a(payload).to_le_bytes());
        }
        dir
    }
}

fn align_up(n: usize) -> usize {
    n.div_ceil(PAGE_SIZE) * PAGE_SIZE
}

/// A parsed, fully checksum-verified segment.
#[derive(Debug)]
pub struct Segment {
    buf: Vec<u8>,
    dir: Vec<SectionEntry>,
}

impl Segment {
    /// Parses and verifies a segment: magic, version, directory CRC,
    /// span bounds, and every section's payload CRC. A segment that
    /// parses is wholly intact — readers never see partial corruption.
    pub fn parse(buf: Vec<u8>) -> Result<Segment> {
        if buf.len() < HEADER_LEN {
            return Err(StorageError::Truncated.into());
        }
        if &buf[..4] != MAGIC {
            return Err(StorageError::BadMagic.into());
        }
        let word = |i: usize| u32::from_le_bytes(buf[i..i + 4].try_into().expect("bounds"));
        if word(4) != VERSION {
            return Err(StorageError::Malformed("segment version").into());
        }
        let n_sections = word(8) as usize;
        let dir_len = word(12) as usize;
        let dir_crc = word(16);
        let dir_end = HEADER_LEN
            .checked_add(dir_len)
            .ok_or(StorageError::Truncated)?;
        if dir_end > buf.len() {
            return Err(StorageError::Truncated.into());
        }
        let dir_bytes = &buf[HEADER_LEN..dir_end];
        if fnv1a(dir_bytes) != dir_crc {
            return Err(StorageError::Corrupt.into());
        }
        let mut dir = Vec::with_capacity(n_sections.min(1024));
        let mut pos = 0usize;
        for _ in 0..n_sections {
            let kind = get_str(dir_bytes, &mut pos)?;
            let name = get_str(dir_bytes, &mut pos)?;
            let end = pos.checked_add(20).ok_or(StorageError::Truncated)?;
            if end > dir_bytes.len() {
                return Err(StorageError::Truncated.into());
            }
            let offset = u64::from_le_bytes(dir_bytes[pos..pos + 8].try_into().expect("bounds"));
            let len = u64::from_le_bytes(dir_bytes[pos + 8..pos + 16].try_into().expect("bounds"));
            let crc = u32::from_le_bytes(dir_bytes[pos + 16..end].try_into().expect("bounds"));
            pos = end;
            let span_end = offset.checked_add(len).ok_or(StorageError::Truncated)?;
            if span_end > buf.len() as u64 {
                return Err(StorageError::Truncated.into());
            }
            if !(offset as usize).is_multiple_of(PAGE_SIZE) {
                return Err(StorageError::Malformed("unaligned section").into());
            }
            if fnv1a(&buf[offset as usize..span_end as usize]) != crc {
                return Err(StorageError::Corrupt.into());
            }
            dir.push(SectionEntry {
                kind,
                name,
                offset,
                len,
            });
        }
        if pos != dir_bytes.len() {
            return Err(StorageError::Malformed("directory trailing bytes").into());
        }
        Ok(Segment { buf, dir })
    }

    /// The payload of the section with this kind and name, if present.
    pub fn section(&self, kind: &str, name: &str) -> Option<&[u8]> {
        self.dir
            .iter()
            .find(|e| e.kind == kind && e.name == name)
            .map(|e| &self.buf[e.offset as usize..(e.offset + e.len) as usize])
    }

    /// All sections in directory order as `(kind, name, payload)`.
    pub fn sections(&self) -> impl Iterator<Item = (&str, &str, &[u8])> {
        self.dir.iter().map(|e| {
            (
                e.kind.as_str(),
                e.name.as_str(),
                &self.buf[e.offset as usize..(e.offset + e.len) as usize],
            )
        })
    }

    /// Number of sections.
    pub fn len(&self) -> usize {
        self.dir.len()
    }

    /// True when the segment has no sections.
    pub fn is_empty(&self) -> bool {
        self.dir.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<u8> {
        let mut b = SegmentBuilder::new();
        b.push("collection", "db", vec![1; 10]);
        b.push("var", "Q", vec![2; PAGE_SIZE + 3]); // spans pages
        b.push("meta", "options", vec![]);
        b.finish()
    }

    #[test]
    fn sections_round_trip_and_are_page_aligned() {
        let bytes = sample();
        let seg = Segment::parse(bytes).unwrap();
        assert_eq!(seg.len(), 3);
        assert_eq!(seg.section("collection", "db").unwrap(), &[1u8; 10][..]);
        assert_eq!(
            seg.section("var", "Q").unwrap(),
            &vec![2u8; PAGE_SIZE + 3][..]
        );
        assert_eq!(seg.section("meta", "options").unwrap(), &[] as &[u8]);
        assert!(seg.section("collection", "other").is_none());
        let kinds: Vec<&str> = seg.sections().map(|(k, _, _)| k).collect();
        assert_eq!(kinds, ["collection", "var", "meta"]);
    }

    #[test]
    fn empty_segment_round_trips() {
        let seg = Segment::parse(SegmentBuilder::new().finish()).unwrap();
        assert!(seg.is_empty());
    }

    #[test]
    fn corruption_anywhere_is_detected() {
        let bytes = sample();
        // Flip a byte at a sample of positions across header,
        // directory, padding, and payloads. Padding flips are the one
        // place corruption is invisible — no checksummed data lives
        // there — so only assert detection where data actually lives.
        let seg = Segment::parse(bytes.clone()).unwrap();
        let mut data_spans: Vec<(usize, usize)> = vec![(0, HEADER_LEN + 64)];
        for e in &seg.dir {
            data_spans.push((e.offset as usize, (e.offset + e.len) as usize));
        }
        for (lo, hi) in data_spans {
            if hi <= lo {
                continue; // empty payload: no checksummed bytes to flip
            }
            for i in [lo, (lo + hi) / 2, hi - 1] {
                if i >= bytes.len() {
                    continue;
                }
                let mut bad = bytes.clone();
                bad[i] ^= 0xff;
                if bad == bytes {
                    continue; // flip landed on its own value
                }
                assert!(Segment::parse(bad).is_err(), "flip at {i} undetected");
            }
        }
        // Truncation at every page boundary and a few interior cuts.
        for cut in [0, 3, HEADER_LEN, HEADER_LEN + 5, PAGE_SIZE, bytes.len() - 1] {
            assert!(Segment::parse(bytes[..cut].to_vec()).is_err(), "cut {cut}");
        }
    }
}
