//! Section payload codecs for the checkpoint segments: raw index
//! arrays ([`IndexParts`]), planner feedback ([`FeedbackStore`]), and
//! the index-options fingerprint a segment was built under. All built
//! on the shared `gql_core::storage` primitives (LEB128 varints, tagged
//! values), so the whole GQL1 file family speaks one wire format.
//!
//! The index-parts codec stores its big arrays (CSR offsets and
//! entries, label-id tables, flattened profiles) as *raw little-endian
//! fixed-width runs*: a varint count, zero padding to the next 8-byte
//! boundary relative to the section start, then the elements verbatim.
//! Sections start on 4096-byte boundaries, so every run is 8-aligned in
//! the file and a memory-mapped reader can adopt it as a typed
//! [`Slab`] without copying or decoding ([`decode_index_parts_from`]).
//! When adoption is impossible — big-endian target, or a byte buffer
//! whose base address happens to be misaligned — the same layout
//! decodes element-wise into owned slabs with identical results.
//! Value-carrying payloads (interner tables, feedback, options) keep
//! the compact varint/tagged encoding: they are small, and they decode
//! into heap structures anyway.
//!
//! Map-shaped state (the feedback store) is serialized in sorted key
//! order, making segment bytes a pure function of logical state rather
//! than of hash-map iteration order.

use crate::segment::SectionSink;
use crate::Result;
use gql_core::storage::{get_value, get_varint, put_value, put_varint, ByteSink, StorageError};
use gql_core::{
    pod_bytes, AdjacencyParts, ByteBuffer, CsrEntry, CsrParts, FeedbackStore, LabelFeedback,
    ShapeFeedback, Slab, Value,
};
use gql_match::IndexParts;
use std::sync::Arc;

/// The index configuration a checkpoint's derived sections were built
/// under. Stored in the segment's meta section so a reopen under
/// different flags knows to rebuild instead of adopting stale shapes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoredOptions {
    /// CSR snapshots were materialized.
    pub csr: bool,
    /// Sorted property runs were built.
    pub prop_index: bool,
    /// Per-node profiles were precomputed.
    pub profiles: bool,
    /// Radius the profiles were computed at.
    pub radius: u64,
}

fn put_bool<S: ByteSink + ?Sized>(out: &mut S, b: bool) {
    out.put_byte(u8::from(b));
}

fn get_bool(buf: &[u8], pos: &mut usize) -> Result<bool> {
    match buf.get(*pos) {
        Some(0) => {
            *pos += 1;
            Ok(false)
        }
        Some(1) => {
            *pos += 1;
            Ok(true)
        }
        Some(_) => Err(StorageError::Malformed("bool tag").into()),
        None => Err(StorageError::Truncated.into()),
    }
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn get_f64(buf: &[u8], pos: &mut usize) -> Result<f64> {
    let end = pos.checked_add(8).ok_or(StorageError::Truncated)?;
    if end > buf.len() {
        return Err(StorageError::Truncated.into());
    }
    let mut b = [0u8; 8];
    b.copy_from_slice(&buf[*pos..end]);
    *pos = end;
    Ok(f64::from_le_bytes(b))
}

/// Reads a count that is about to size an allocation; anything larger
/// than the remaining input is malformed by construction (every counted
/// element occupies at least one byte).
fn get_count(buf: &[u8], pos: &mut usize) -> Result<usize> {
    let n = get_varint(buf, pos)? as usize;
    if n > buf.len().saturating_sub(*pos) {
        return Err(StorageError::Malformed("implausible count").into());
    }
    Ok(n)
}

fn put_u32s(out: &mut Vec<u8>, vs: &[u32]) {
    put_varint(out, vs.len() as u64);
    for &v in vs {
        put_varint(out, u64::from(v));
    }
}

fn get_u32s(buf: &[u8], pos: &mut usize) -> Result<Vec<u32>> {
    let n = get_count(buf, pos)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let v = get_varint(buf, pos)?;
        if v > u64::from(u32::MAX) {
            return Err(StorageError::Malformed("u32 overflow").into());
        }
        out.push(v as u32);
    }
    Ok(out)
}

// ---- raw little-endian array runs ------------------------------------

/// Alignment of raw array runs relative to the section start. Sections
/// start on 4096-byte file offsets, so section-relative 8-alignment is
/// absolute 8-alignment — enough for every element type we map
/// (`u32`, 12-byte `CsrEntry`).
const RUN_ALIGN: usize = 8;

fn put_pad<S: SectionSink + ?Sized>(out: &mut S) {
    let pad = out.pos().next_multiple_of(RUN_ALIGN) - out.pos();
    out.put_bytes(&[0u8; RUN_ALIGN][..pad]);
}

/// Skips (and checks) the zero padding before a raw run. Nonzero
/// padding is corruption the lazy-CRC path must still catch.
fn skip_pad(buf: &[u8], pos: &mut usize) -> Result<()> {
    let target = pos.next_multiple_of(RUN_ALIGN);
    if target > buf.len() {
        return Err(StorageError::Truncated.into());
    }
    if buf[*pos..target].iter().any(|&b| b != 0) {
        return Err(StorageError::Malformed("nonzero run padding").into());
    }
    *pos = target;
    Ok(())
}

fn put_u32_run<S: SectionSink + ?Sized>(out: &mut S, vs: &[u32]) {
    put_varint(out, vs.len() as u64);
    put_pad(out);
    if cfg!(target_endian = "little") {
        out.put_bytes(pod_bytes(vs));
    } else {
        for &v in vs {
            out.put_bytes(&v.to_le_bytes());
        }
    }
}

fn put_entry_run<S: SectionSink + ?Sized>(out: &mut S, es: &[CsrEntry]) {
    put_varint(out, es.len() as u64);
    put_pad(out);
    if cfg!(target_endian = "little") {
        // CsrEntry is #[repr(C)] {label, node, edge}, 12 bytes, no
        // padding — its native bytes are the wire layout.
        out.put_bytes(pod_bytes(es));
    } else {
        for e in es {
            out.put_bytes(&e.label.to_le_bytes());
            out.put_bytes(&e.node.to_le_bytes());
            out.put_bytes(&e.edge.to_le_bytes());
        }
    }
}

/// Decode context for one section: the section's bytes plus, when the
/// section lives in a shared buffer at a known absolute offset, what a
/// zero-copy [`Slab`] adoption needs.
struct SectionReader<'a> {
    bytes: &'a [u8],
    /// `(buffer, absolute offset of the section's first byte)`.
    adopt: Option<(&'a Arc<dyn ByteBuffer>, usize)>,
}

impl SectionReader<'_> {
    /// Reads a raw u32 run, adopting it zero-copy when possible and
    /// copying otherwise.
    fn get_u32_run(&self, pos: &mut usize) -> Result<Slab<u32>> {
        let (start, n) = self.run_span::<4>(pos)?;
        if cfg!(target_endian = "little") {
            if let Some((buf, base)) = self.adopt {
                if let Ok(slab) = Slab::<u32>::from_buffer(Arc::clone(buf), base + start, n) {
                    return Ok(slab);
                }
            }
        }
        let mut out = Vec::with_capacity(n);
        for chunk in self.bytes[start..*pos].chunks_exact(4) {
            out.push(u32::from_le_bytes(chunk.try_into().expect("chunk")));
        }
        Ok(out.into())
    }

    /// Reads a raw [`CsrEntry`] run, adopting or copying like
    /// [`SectionReader::get_u32_run`].
    fn get_entry_run(&self, pos: &mut usize) -> Result<Slab<CsrEntry>> {
        let (start, n) = self.run_span::<12>(pos)?;
        if cfg!(target_endian = "little") {
            if let Some((buf, base)) = self.adopt {
                if let Ok(slab) = Slab::<CsrEntry>::from_buffer(Arc::clone(buf), base + start, n) {
                    return Ok(slab);
                }
            }
        }
        let word = |b: &[u8], i: usize| u32::from_le_bytes(b[i..i + 4].try_into().expect("chunk"));
        let mut out = Vec::with_capacity(n);
        for chunk in self.bytes[start..*pos].chunks_exact(12) {
            out.push(CsrEntry {
                label: word(chunk, 0),
                node: word(chunk, 4),
                edge: word(chunk, 8),
            });
        }
        Ok(out.into())
    }

    /// Parses a run header (count, padding) and bounds-checks the
    /// element bytes; returns the run's start and element count,
    /// leaving `pos` past the run.
    fn run_span<const SIZE: usize>(&self, pos: &mut usize) -> Result<(usize, usize)> {
        let n = get_varint(self.bytes, pos)? as usize;
        skip_pad(self.bytes, pos)?;
        let nbytes = n.checked_mul(SIZE).ok_or(StorageError::Truncated)?;
        let end = pos.checked_add(nbytes).ok_or(StorageError::Truncated)?;
        if end > self.bytes.len() {
            return Err(StorageError::Truncated.into());
        }
        let start = *pos;
        *pos = end;
        Ok((start, n))
    }
}

// ---- index options ----------------------------------------------------

/// Encodes a [`StoredOptions`] meta payload.
pub fn encode_options(o: &StoredOptions) -> Vec<u8> {
    let mut out = Vec::with_capacity(8);
    put_bool(&mut out, o.csr);
    put_bool(&mut out, o.prop_index);
    put_bool(&mut out, o.profiles);
    put_varint(&mut out, o.radius);
    out
}

/// Decodes a [`StoredOptions`] meta payload.
pub fn decode_options(buf: &[u8]) -> Result<StoredOptions> {
    let mut pos = 0;
    let o = StoredOptions {
        csr: get_bool(buf, &mut pos)?,
        prop_index: get_bool(buf, &mut pos)?,
        profiles: get_bool(buf, &mut pos)?,
        radius: get_varint(buf, &mut pos)?,
    };
    if pos != buf.len() {
        return Err(StorageError::Malformed("options trailing bytes").into());
    }
    Ok(o)
}

// ---- index parts ------------------------------------------------------

fn put_adjacency<S: SectionSink + ?Sized>(out: &mut S, a: &AdjacencyParts) {
    put_u32_run(out, &a.offsets);
    put_entry_run(out, &a.entries);
}

fn get_adjacency(r: &SectionReader<'_>, pos: &mut usize) -> Result<AdjacencyParts> {
    Ok(AdjacencyParts {
        offsets: r.get_u32_run(pos)?,
        entries: r.get_entry_run(pos)?,
    })
}

fn put_index_part<S: SectionSink + ?Sized>(out: &mut S, p: &IndexParts) {
    put_varint(out, p.interner_values.len() as u64);
    for v in &p.interner_values {
        put_value(out, v);
    }
    put_u32_run(out, &p.node_label_ids);
    put_u32_run(out, &p.edge_label_ids);
    match &p.csr {
        None => out.put_byte(0),
        Some(c) => {
            out.put_byte(1);
            put_bool(out, c.directed);
            put_u32_run(out, &c.node_labels);
            put_adjacency(out, &c.out);
            put_adjacency(out, &c.inc);
            put_adjacency(out, &c.all);
        }
    }
    put_u32_run(out, &p.profile_offsets);
    put_u32_run(out, &p.profile_ids);
    put_varint(out, p.radius as u64);
    put_bool(out, p.prop_index);
}

fn get_index_part(r: &SectionReader<'_>, pos: &mut usize) -> Result<IndexParts> {
    let buf = r.bytes;
    let n_values = get_count(buf, pos)?;
    let mut interner_values: Vec<Value> = Vec::with_capacity(n_values);
    for _ in 0..n_values {
        interner_values.push(get_value(buf, pos)?);
    }
    let node_label_ids = r.get_u32_run(pos)?;
    let edge_label_ids = r.get_u32_run(pos)?;
    let csr = match buf.get(*pos) {
        Some(0) => {
            *pos += 1;
            None
        }
        Some(1) => {
            *pos += 1;
            Some(CsrParts {
                directed: get_bool(buf, pos)?,
                node_labels: r.get_u32_run(pos)?,
                out: get_adjacency(r, pos)?,
                inc: get_adjacency(r, pos)?,
                all: get_adjacency(r, pos)?,
            })
        }
        Some(_) => return Err(StorageError::Malformed("csr option tag").into()),
        None => return Err(StorageError::Truncated.into()),
    };
    let profile_offsets = r.get_u32_run(pos)?;
    let profile_ids = r.get_u32_run(pos)?;
    let radius = get_varint(buf, pos)? as usize;
    let prop_index = get_bool(buf, pos)?;
    Ok(IndexParts {
        interner_values,
        node_label_ids,
        edge_label_ids,
        csr,
        profile_offsets,
        profile_ids,
        radius,
        prop_index,
    })
}

/// Streams the per-graph [`IndexParts`] of one collection into a
/// section sink — a `Vec<u8>` or a `SegmentWriter` section (the
/// checkpoint path, where the big arrays go straight to the file).
pub fn encode_index_parts_into<S: SectionSink + ?Sized>(out: &mut S, parts: &[IndexParts]) {
    put_varint(out, parts.len() as u64);
    for p in parts {
        put_index_part(out, p);
    }
}

/// Encodes the per-graph [`IndexParts`] of one collection to owned
/// bytes.
pub fn encode_index_parts(parts: &[IndexParts]) -> Vec<u8> {
    let mut out = Vec::new();
    encode_index_parts_into(&mut out, parts);
    out
}

fn decode_index_parts_reader(r: &SectionReader<'_>) -> Result<Vec<IndexParts>> {
    let mut pos = 0;
    let n = get_count(r.bytes, &mut pos)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(get_index_part(r, &mut pos)?);
    }
    if pos != r.bytes.len() {
        return Err(StorageError::Malformed("index parts trailing bytes").into());
    }
    Ok(out)
}

/// Decodes a payload written by [`encode_index_parts`] into owned
/// slabs (no adoption).
pub fn decode_index_parts(buf: &[u8]) -> Result<Vec<IndexParts>> {
    decode_index_parts_reader(&SectionReader {
        bytes: buf,
        adopt: None,
    })
}

/// Decodes an index-parts section living at `[base, base + len)` of a
/// shared buffer (typically a mapped checkpoint segment), adopting
/// each raw array as a zero-copy [`Slab`] view when the platform and
/// alignment allow, and copying element-wise otherwise. The two paths
/// produce equal values; only the storage differs.
pub fn decode_index_parts_from(
    buf: &Arc<dyn ByteBuffer>,
    base: usize,
    len: usize,
) -> Result<Vec<IndexParts>> {
    let whole = buf.bytes();
    let end = base.checked_add(len).ok_or(StorageError::Truncated)?;
    if end > whole.len() {
        return Err(StorageError::Truncated.into());
    }
    decode_index_parts_reader(&SectionReader {
        bytes: &whole[base..end],
        adopt: Some((buf, base)),
    })
}

// ---- planner feedback -------------------------------------------------

/// Encodes a [`FeedbackStore`] in sorted key order (deterministic
/// bytes regardless of hash-map iteration order).
pub fn encode_feedback(fb: &FeedbackStore) -> Vec<u8> {
    let mut out = Vec::new();
    let mut shapes: Vec<(&(u64, u64), &ShapeFeedback)> = fb.shapes().collect();
    shapes.sort_by_key(|(k, _)| **k);
    put_varint(&mut out, shapes.len() as u64);
    for (&(shape, scope), s) in shapes {
        put_varint(&mut out, shape);
        put_varint(&mut out, scope);
        put_varint(&mut out, s.runs);
        put_varint(&mut out, s.candidate_space);
        put_varint(&mut out, s.refine_removed);
        put_varint(&mut out, s.refine_checks);
        put_u32s(&mut out, &s.refined_sizes);
        put_varint(&mut out, s.search_steps);
        put_varint(&mut out, s.matches);
        put_f64(&mut out, s.estimated_size);
        put_varint(&mut out, s.probe_bucket);
        put_varint(&mut out, s.probe_hits);
    }
    let mut labels: Vec<(&(u64, u32), &LabelFeedback)> = fb.labels().collect();
    labels.sort_by_key(|(k, _)| **k);
    put_varint(&mut out, labels.len() as u64);
    for (&(scope, label), l) in labels {
        put_varint(&mut out, scope);
        put_varint(&mut out, u64::from(label));
        put_varint(&mut out, l.runs);
        put_varint(&mut out, l.estimated);
        put_varint(&mut out, l.observed);
    }
    out
}

/// Decodes a payload written by [`encode_feedback`].
pub fn decode_feedback(buf: &[u8]) -> Result<FeedbackStore> {
    let mut pos = 0;
    let mut fb = FeedbackStore::new();
    let n_shapes = get_count(buf, &mut pos)?;
    for _ in 0..n_shapes {
        let shape = get_varint(buf, &mut pos)?;
        let scope = get_varint(buf, &mut pos)?;
        let s = ShapeFeedback {
            runs: get_varint(buf, &mut pos)?,
            candidate_space: get_varint(buf, &mut pos)?,
            refine_removed: get_varint(buf, &mut pos)?,
            refine_checks: get_varint(buf, &mut pos)?,
            refined_sizes: get_u32s(buf, &mut pos)?,
            search_steps: get_varint(buf, &mut pos)?,
            matches: get_varint(buf, &mut pos)?,
            estimated_size: get_f64(buf, &mut pos)?,
            probe_bucket: get_varint(buf, &mut pos)?,
            probe_hits: get_varint(buf, &mut pos)?,
        };
        fb.restore_shape(shape, scope, s);
    }
    let n_labels = get_count(buf, &mut pos)?;
    for _ in 0..n_labels {
        let scope = get_varint(buf, &mut pos)?;
        let label = get_varint(buf, &mut pos)?;
        if label > u64::from(u32::MAX) {
            return Err(StorageError::Malformed("label id overflow").into());
        }
        let l = LabelFeedback {
            runs: get_varint(buf, &mut pos)?,
            estimated: get_varint(buf, &mut pos)?,
            observed: get_varint(buf, &mut pos)?,
        };
        fb.restore_label(scope, label as u32, l);
    }
    if pos != buf.len() {
        return Err(StorageError::Malformed("feedback trailing bytes").into());
    }
    Ok(fb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segment::{Segment, SegmentBuilder};
    use gql_core::fixtures::figure_4_16_graph;
    use gql_core::OwnedBytes;
    use gql_match::GraphIndex;

    #[test]
    fn index_parts_round_trip() {
        let (g, _) = figure_4_16_graph();
        let parts = vec![GraphIndex::build_full(&g, 1).to_parts()];
        let bytes = encode_index_parts(&parts);
        let back = decode_index_parts(&bytes).unwrap();
        assert_eq!(back, parts);
        // Any truncation fails cleanly.
        for cut in [0, 1, bytes.len() / 2, bytes.len() - 1] {
            assert!(decode_index_parts(&bytes[..cut]).is_err(), "cut {cut}");
        }
        assert!(decode_index_parts(&[]).is_err());
    }

    #[test]
    fn mapped_decode_adopts_and_matches_owned() {
        let (g, _) = figure_4_16_graph();
        let parts = vec![GraphIndex::build_full(&g, 1).to_parts()];
        let mut b = SegmentBuilder::new();
        b.push("indexes", "db", encode_index_parts(&parts));
        let seg = Segment::parse(b.finish()).unwrap();
        let sec = seg.find("indexes", "db").unwrap();
        let (base, len) = (sec.base(), sec.bytes().len());
        let adopted = decode_index_parts_from(seg.buffer(), base, len).unwrap();
        assert_eq!(adopted, parts);
        // Section bases are page-aligned within the file; whether
        // adoption actually went zero-copy depends on the backing heap
        // address too. When that cooperates (allocators hand back
        // ≥8-aligned blocks in practice), the big arrays must be views.
        if cfg!(target_endian = "little")
            && (seg.buffer().bytes().as_ptr() as usize).is_multiple_of(8)
        {
            let a = &adopted[0];
            assert!(a.node_label_ids.is_mapped());
            let csr = a.csr.as_ref().unwrap();
            assert!(csr.out.offsets.is_mapped());
            assert!(csr.out.entries.is_mapped());
            assert!(a.profile_ids.is_mapped());
        }
    }

    #[test]
    fn corrupt_index_bytes_never_decode_silently() {
        let (g, _) = figure_4_16_graph();
        let parts = vec![GraphIndex::build_full(&g, 1).to_parts()];
        let bytes = encode_index_parts(&parts);
        // Flip every byte (including run padding, which must be
        // rejected as nonzero): each flip must either fail to decode or
        // decode to a visibly different value — silent equality with
        // corrupt bytes is the only failure mode.
        let mut padding_rejected = false;
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0xa5;
            match decode_index_parts(&bad) {
                Err(_) => {
                    if bytes[i] == 0 {
                        padding_rejected = true;
                    }
                }
                Ok(v) => assert_ne!(v, parts, "silent corruption at byte {i}"),
            }
        }
        assert!(padding_rejected, "no zero byte was rejected");
    }

    #[test]
    fn owned_buffer_decodes_through_mapped_path() {
        let (g, _) = figure_4_16_graph();
        let parts = vec![GraphIndex::build(&g).to_parts()];
        let buf: Arc<dyn ByteBuffer> = Arc::new(OwnedBytes(encode_index_parts(&parts)));
        let n = buf.bytes().len();
        assert_eq!(decode_index_parts_from(&buf, 0, n).unwrap(), parts);
        assert!(decode_index_parts_from(&buf, 8, n).is_err());
    }

    #[test]
    fn feedback_round_trip_is_deterministic() {
        let mut fb = FeedbackStore::new();
        fb.restore_shape(
            7,
            99,
            ShapeFeedback {
                runs: 3,
                candidate_space: 120,
                refine_removed: 40,
                refine_checks: 500,
                refined_sizes: vec![10, 20, 3],
                search_steps: 777,
                matches: 12,
                estimated_size: 14.5,
                probe_bucket: 60,
                probe_hits: 9,
            },
        );
        fb.restore_shape(1, 2, ShapeFeedback::default());
        fb.restore_label(
            99,
            4,
            LabelFeedback {
                runs: 2,
                estimated: 30,
                observed: 12,
            },
        );
        let bytes = encode_feedback(&fb);
        // Same logical content encodes to the same bytes (sorted keys).
        assert_eq!(bytes, encode_feedback(&fb.clone()));
        let back = decode_feedback(&bytes).unwrap();
        let mut got: Vec<_> = back.shapes().collect();
        got.sort_by_key(|(k, _)| **k);
        let mut want: Vec<_> = fb.shapes().collect();
        want.sort_by_key(|(k, _)| **k);
        assert_eq!(got, want);
        assert_eq!(
            back.labels().collect::<Vec<_>>(),
            fb.labels().collect::<Vec<_>>()
        );
        assert!(decode_feedback(&bytes[..bytes.len() - 1]).is_err());
    }

    #[test]
    fn options_round_trip() {
        let o = StoredOptions {
            csr: true,
            prop_index: false,
            profiles: true,
            radius: 2,
        };
        assert_eq!(decode_options(&encode_options(&o)).unwrap(), o);
        assert!(decode_options(&[9]).is_err());
        assert!(decode_options(&[]).is_err());
    }
}
