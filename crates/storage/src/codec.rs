//! Section payload codecs for the checkpoint segments: raw index
//! arrays ([`IndexParts`]), planner feedback ([`FeedbackStore`]), and
//! the index-options fingerprint a segment was built under. All built
//! on the shared `gql_core::storage` primitives (LEB128 varints, tagged
//! values), so the whole GQL1 file family speaks one wire format.
//!
//! Map-shaped state (the feedback store) is serialized in sorted key
//! order, making segment bytes a pure function of logical state rather
//! than of hash-map iteration order.

use crate::Result;
use gql_core::storage::{get_value, get_varint, put_value, put_varint, StorageError};
use gql_core::{
    AdjacencyParts, CsrEntry, CsrParts, FeedbackStore, LabelFeedback, ShapeFeedback, Value,
};
use gql_match::IndexParts;

/// The index configuration a checkpoint's derived sections were built
/// under. Stored in the segment's meta section so a reopen under
/// different flags knows to rebuild instead of adopting stale shapes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoredOptions {
    /// CSR snapshots were materialized.
    pub csr: bool,
    /// Sorted property runs were built.
    pub prop_index: bool,
    /// Per-node profiles were precomputed.
    pub profiles: bool,
    /// Radius the profiles were computed at.
    pub radius: u64,
}

fn put_bool(out: &mut Vec<u8>, b: bool) {
    out.push(u8::from(b));
}

fn get_bool(buf: &[u8], pos: &mut usize) -> Result<bool> {
    match buf.get(*pos) {
        Some(0) => {
            *pos += 1;
            Ok(false)
        }
        Some(1) => {
            *pos += 1;
            Ok(true)
        }
        Some(_) => Err(StorageError::Malformed("bool tag").into()),
        None => Err(StorageError::Truncated.into()),
    }
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn get_f64(buf: &[u8], pos: &mut usize) -> Result<f64> {
    let end = pos.checked_add(8).ok_or(StorageError::Truncated)?;
    if end > buf.len() {
        return Err(StorageError::Truncated.into());
    }
    let mut b = [0u8; 8];
    b.copy_from_slice(&buf[*pos..end]);
    *pos = end;
    Ok(f64::from_le_bytes(b))
}

/// Reads a count that is about to size an allocation; anything larger
/// than the remaining input is malformed by construction (every counted
/// element occupies at least one byte).
fn get_count(buf: &[u8], pos: &mut usize) -> Result<usize> {
    let n = get_varint(buf, pos)? as usize;
    if n > buf.len().saturating_sub(*pos) {
        return Err(StorageError::Malformed("implausible count").into());
    }
    Ok(n)
}

fn put_u32s(out: &mut Vec<u8>, vs: &[u32]) {
    put_varint(out, vs.len() as u64);
    for &v in vs {
        put_varint(out, u64::from(v));
    }
}

fn get_u32s(buf: &[u8], pos: &mut usize) -> Result<Vec<u32>> {
    let n = get_count(buf, pos)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let v = get_varint(buf, pos)?;
        if v > u64::from(u32::MAX) {
            return Err(StorageError::Malformed("u32 overflow").into());
        }
        out.push(v as u32);
    }
    Ok(out)
}

// ---- index options ----------------------------------------------------

/// Encodes a [`StoredOptions`] meta payload.
pub fn encode_options(o: &StoredOptions) -> Vec<u8> {
    let mut out = Vec::with_capacity(8);
    put_bool(&mut out, o.csr);
    put_bool(&mut out, o.prop_index);
    put_bool(&mut out, o.profiles);
    put_varint(&mut out, o.radius);
    out
}

/// Decodes a [`StoredOptions`] meta payload.
pub fn decode_options(buf: &[u8]) -> Result<StoredOptions> {
    let mut pos = 0;
    let o = StoredOptions {
        csr: get_bool(buf, &mut pos)?,
        prop_index: get_bool(buf, &mut pos)?,
        profiles: get_bool(buf, &mut pos)?,
        radius: get_varint(buf, &mut pos)?,
    };
    if pos != buf.len() {
        return Err(StorageError::Malformed("options trailing bytes").into());
    }
    Ok(o)
}

// ---- index parts ------------------------------------------------------

fn put_adjacency(out: &mut Vec<u8>, a: &AdjacencyParts) {
    put_u32s(out, &a.offsets);
    put_varint(out, a.entries.len() as u64);
    for e in &a.entries {
        put_varint(out, u64::from(e.label));
        put_varint(out, u64::from(e.node));
        put_varint(out, u64::from(e.edge));
    }
}

fn get_adjacency(buf: &[u8], pos: &mut usize) -> Result<AdjacencyParts> {
    let offsets = get_u32s(buf, pos)?;
    let n = get_count(buf, pos)?;
    let mut entries = Vec::with_capacity(n);
    for _ in 0..n {
        let label = get_varint(buf, pos)?;
        let node = get_varint(buf, pos)?;
        let edge = get_varint(buf, pos)?;
        if label > u64::from(u32::MAX) || node > u64::from(u32::MAX) || edge > u64::from(u32::MAX) {
            return Err(StorageError::Malformed("csr entry overflow").into());
        }
        entries.push(CsrEntry {
            label: label as u32,
            node: node as u32,
            edge: edge as u32,
        });
    }
    Ok(AdjacencyParts { offsets, entries })
}

fn put_index_part(out: &mut Vec<u8>, p: &IndexParts) {
    put_varint(out, p.interner_values.len() as u64);
    for v in &p.interner_values {
        put_value(out, v);
    }
    put_u32s(out, &p.node_label_ids);
    put_u32s(out, &p.edge_label_ids);
    match &p.csr {
        None => out.push(0),
        Some(c) => {
            out.push(1);
            put_bool(out, c.directed);
            put_u32s(out, &c.node_labels);
            put_adjacency(out, &c.out);
            put_adjacency(out, &c.inc);
            put_adjacency(out, &c.all);
        }
    }
    put_varint(out, p.id_profiles.len() as u64);
    for prof in &p.id_profiles {
        put_u32s(out, prof);
    }
    put_varint(out, p.radius as u64);
    put_bool(out, p.prop_index);
}

fn get_index_part(buf: &[u8], pos: &mut usize) -> Result<IndexParts> {
    let n_values = get_count(buf, pos)?;
    let mut interner_values: Vec<Value> = Vec::with_capacity(n_values);
    for _ in 0..n_values {
        interner_values.push(get_value(buf, pos)?);
    }
    let node_label_ids = get_u32s(buf, pos)?;
    let edge_label_ids = get_u32s(buf, pos)?;
    let csr = match buf.get(*pos) {
        Some(0) => {
            *pos += 1;
            None
        }
        Some(1) => {
            *pos += 1;
            Some(CsrParts {
                directed: get_bool(buf, pos)?,
                node_labels: get_u32s(buf, pos)?,
                out: get_adjacency(buf, pos)?,
                inc: get_adjacency(buf, pos)?,
                all: get_adjacency(buf, pos)?,
            })
        }
        Some(_) => return Err(StorageError::Malformed("csr option tag").into()),
        None => return Err(StorageError::Truncated.into()),
    };
    let n_profiles = get_count(buf, pos)?;
    let mut id_profiles = Vec::with_capacity(n_profiles);
    for _ in 0..n_profiles {
        id_profiles.push(get_u32s(buf, pos)?);
    }
    let radius = get_varint(buf, pos)? as usize;
    let prop_index = get_bool(buf, pos)?;
    Ok(IndexParts {
        interner_values,
        node_label_ids,
        edge_label_ids,
        csr,
        id_profiles,
        radius,
        prop_index,
    })
}

/// Encodes the per-graph [`IndexParts`] of one collection.
pub fn encode_index_parts(parts: &[IndexParts]) -> Vec<u8> {
    let mut out = Vec::new();
    put_varint(&mut out, parts.len() as u64);
    for p in parts {
        put_index_part(&mut out, p);
    }
    out
}

/// Decodes a payload written by [`encode_index_parts`].
pub fn decode_index_parts(buf: &[u8]) -> Result<Vec<IndexParts>> {
    let mut pos = 0;
    let n = get_count(buf, &mut pos)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(get_index_part(buf, &mut pos)?);
    }
    if pos != buf.len() {
        return Err(StorageError::Malformed("index parts trailing bytes").into());
    }
    Ok(out)
}

// ---- planner feedback -------------------------------------------------

/// Encodes a [`FeedbackStore`] in sorted key order (deterministic
/// bytes regardless of hash-map iteration order).
pub fn encode_feedback(fb: &FeedbackStore) -> Vec<u8> {
    let mut out = Vec::new();
    let mut shapes: Vec<(&(u64, u64), &ShapeFeedback)> = fb.shapes().collect();
    shapes.sort_by_key(|(k, _)| **k);
    put_varint(&mut out, shapes.len() as u64);
    for (&(shape, scope), s) in shapes {
        put_varint(&mut out, shape);
        put_varint(&mut out, scope);
        put_varint(&mut out, s.runs);
        put_varint(&mut out, s.candidate_space);
        put_varint(&mut out, s.refine_removed);
        put_varint(&mut out, s.refine_checks);
        put_u32s(&mut out, &s.refined_sizes);
        put_varint(&mut out, s.search_steps);
        put_varint(&mut out, s.matches);
        put_f64(&mut out, s.estimated_size);
        put_varint(&mut out, s.probe_bucket);
        put_varint(&mut out, s.probe_hits);
    }
    let mut labels: Vec<(&(u64, u32), &LabelFeedback)> = fb.labels().collect();
    labels.sort_by_key(|(k, _)| **k);
    put_varint(&mut out, labels.len() as u64);
    for (&(scope, label), l) in labels {
        put_varint(&mut out, scope);
        put_varint(&mut out, u64::from(label));
        put_varint(&mut out, l.runs);
        put_varint(&mut out, l.estimated);
        put_varint(&mut out, l.observed);
    }
    out
}

/// Decodes a payload written by [`encode_feedback`].
pub fn decode_feedback(buf: &[u8]) -> Result<FeedbackStore> {
    let mut pos = 0;
    let mut fb = FeedbackStore::new();
    let n_shapes = get_count(buf, &mut pos)?;
    for _ in 0..n_shapes {
        let shape = get_varint(buf, &mut pos)?;
        let scope = get_varint(buf, &mut pos)?;
        let s = ShapeFeedback {
            runs: get_varint(buf, &mut pos)?,
            candidate_space: get_varint(buf, &mut pos)?,
            refine_removed: get_varint(buf, &mut pos)?,
            refine_checks: get_varint(buf, &mut pos)?,
            refined_sizes: get_u32s(buf, &mut pos)?,
            search_steps: get_varint(buf, &mut pos)?,
            matches: get_varint(buf, &mut pos)?,
            estimated_size: get_f64(buf, &mut pos)?,
            probe_bucket: get_varint(buf, &mut pos)?,
            probe_hits: get_varint(buf, &mut pos)?,
        };
        fb.restore_shape(shape, scope, s);
    }
    let n_labels = get_count(buf, &mut pos)?;
    for _ in 0..n_labels {
        let scope = get_varint(buf, &mut pos)?;
        let label = get_varint(buf, &mut pos)?;
        if label > u64::from(u32::MAX) {
            return Err(StorageError::Malformed("label id overflow").into());
        }
        let l = LabelFeedback {
            runs: get_varint(buf, &mut pos)?,
            estimated: get_varint(buf, &mut pos)?,
            observed: get_varint(buf, &mut pos)?,
        };
        fb.restore_label(scope, label as u32, l);
    }
    if pos != buf.len() {
        return Err(StorageError::Malformed("feedback trailing bytes").into());
    }
    Ok(fb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gql_core::fixtures::figure_4_16_graph;
    use gql_match::GraphIndex;

    #[test]
    fn index_parts_round_trip() {
        let (g, _) = figure_4_16_graph();
        let parts = vec![GraphIndex::build_full(&g, 1).to_parts()];
        let bytes = encode_index_parts(&parts);
        let back = decode_index_parts(&bytes).unwrap();
        assert_eq!(back, parts);
        // Any truncation fails cleanly.
        for cut in [0, 1, bytes.len() / 2, bytes.len() - 1] {
            assert!(decode_index_parts(&bytes[..cut]).is_err(), "cut {cut}");
        }
        assert!(decode_index_parts(&[]).is_err());
    }

    #[test]
    fn feedback_round_trip_is_deterministic() {
        let mut fb = FeedbackStore::new();
        fb.restore_shape(
            7,
            99,
            ShapeFeedback {
                runs: 3,
                candidate_space: 120,
                refine_removed: 40,
                refine_checks: 500,
                refined_sizes: vec![10, 20, 3],
                search_steps: 777,
                matches: 12,
                estimated_size: 14.5,
                probe_bucket: 60,
                probe_hits: 9,
            },
        );
        fb.restore_shape(1, 2, ShapeFeedback::default());
        fb.restore_label(
            99,
            4,
            LabelFeedback {
                runs: 2,
                estimated: 30,
                observed: 12,
            },
        );
        let bytes = encode_feedback(&fb);
        // Same logical content encodes to the same bytes (sorted keys).
        assert_eq!(bytes, encode_feedback(&fb.clone()));
        let back = decode_feedback(&bytes).unwrap();
        let mut got: Vec<_> = back.shapes().collect();
        got.sort_by_key(|(k, _)| **k);
        let mut want: Vec<_> = fb.shapes().collect();
        want.sort_by_key(|(k, _)| **k);
        assert_eq!(got, want);
        assert_eq!(
            back.labels().collect::<Vec<_>>(),
            fb.labels().collect::<Vec<_>>()
        );
        assert!(decode_feedback(&bytes[..bytes.len() - 1]).is_err());
    }

    #[test]
    fn options_round_trip() {
        let o = StoredOptions {
            csr: true,
            prop_index: false,
            profiles: true,
            radius: 2,
        };
        assert_eq!(decode_options(&encode_options(&o)).unwrap(), o);
        assert!(decode_options(&[9]).is_err());
        assert!(decode_options(&[]).is_err());
    }
}
