//! # gql-storage — disk-native persistence for graph databases
//!
//! The §7 "Physical Storage of Graph Data" direction made durable: a
//! write-ahead log plus checkpoint segments, so a database directory
//! survives process kills at any instant and reopens by *reading* its
//! indexes instead of rebuilding them.
//!
//! Three layers, bottom-up:
//!
//! - [`wal`]: an append-only log of length-prefixed, CRC-checksummed
//!   mutation records. Replay-on-open walks the log sequentially and
//!   truncates a torn tail (short write, bit flip, garbage) back to the
//!   last committed record — a `kill -9` mid-append loses at most the
//!   uncommitted suffix, never committed state.
//! - [`segment`]: page-aligned checkpoint segments with a checksummed
//!   section directory. Each section (collection payload, raw index
//!   arrays, planner feedback, top-level variables) carries its own
//!   CRC; payloads start on 4096-byte boundaries so the memory-mapped
//!   reader ([`mmap::SegmentMap`]) hands out aligned slices the core's
//!   `Slab<T>` adopts zero-copy. Writing streams through
//!   [`segment::SegmentWriter`]'s fixed-size buffer with an
//!   incremental CRC — checkpoints never materialize in memory.
//! - [`store`]: the checkpoint/recovery protocol tying them together —
//!   write `checkpoint-<n>.tmp`, fsync, rename to `.seg`, publish via
//!   an atomically renamed `MANIFEST`, then truncate the WAL and delete
//!   the previous segment (the compaction pass: tombstoned collections
//!   and superseded record versions simply don't survive into the new
//!   segment). A crash between any two steps recovers: `.tmp` files
//!   are ignored, the old manifest still names a complete segment, and
//!   WAL records already folded into the new segment replay
//!   idempotently because every record carries the full new value.
//!
//! [`bulkload`] builds checkpoint segments straight from sorted input —
//! interning labels, counting-sorting the CSR arrays, and BFS-ing the
//! interned profiles — without ever materializing the mutable
//! [`gql_core::Graph`] (no hash-map adjacency, no per-edge probes), so
//! a first open of a bulk-loaded directory is already on the
//! segment-read fast path.
//!
//! The crate shares one codec with `gql_core::storage` (LEB128 varints,
//! tagged values, FNV-1a frame checksums): every on-disk artifact in
//! the GQL1 family is inspectable with the same primitives.

#![warn(missing_docs)]

pub mod bulkload;
pub mod codec;
pub mod mmap;
pub mod segment;
pub mod store;
pub mod wal;

pub use bulkload::BulkLoader;
pub use codec::{
    decode_feedback, decode_index_parts, decode_index_parts_from, decode_options, encode_feedback,
    encode_index_parts, encode_index_parts_into, encode_options, StoredOptions,
};
pub use mmap::SegmentMap;
pub use segment::{Section, Segment, SegmentBuilder, SegmentWriter, PAGE_SIZE};
pub use store::{CollectionSnapshot, OpenOptions, Restored, RestoredCollection, Snapshot, Store};
pub use wal::{Wal, WalRecord};

use gql_core::StorageError;
use std::fmt;

/// Errors from the persistence layer.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying filesystem failure.
    Io(std::io::Error),
    /// A frame failed to decode (corruption that survived the CRC, a
    /// version mismatch, or a malformed field).
    Codec(StorageError),
    /// A structural invariant of a segment or snapshot was violated.
    Invalid(&'static str),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "storage i/o error: {e}"),
            StoreError::Codec(e) => write!(f, "storage decode error: {e}"),
            StoreError::Invalid(what) => write!(f, "invalid storage state: {what}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<StorageError> for StoreError {
    fn from(e: StorageError) -> Self {
        StoreError::Codec(e)
    }
}

/// Result alias for the persistence layer.
pub type Result<T> = std::result::Result<T, StoreError>;
