//! The checkpoint/recovery protocol: a database directory holding one
//! published checkpoint segment, a manifest naming it, and the WAL of
//! mutations since.
//!
//! Directory contents:
//!
//! ```text
//! MANIFEST            "GMAN" | seq u64-le | crc u32-le
//! checkpoint-<n>.seg  the published segment (see [`crate::segment`])
//! wal.log             mutations since checkpoint <n>
//! *.tmp               in-flight writes; ignored and removed on open
//! ```
//!
//! Checkpoint protocol (each step durable before the next):
//!
//! 1. stream `checkpoint-<n>.tmp` section by section, fsync, rename to
//!    `checkpoint-<n>.seg` (payloads never materialize in memory — the
//!    index arrays are encoded straight into the file through a
//!    fixed-size buffer)
//! 2. write `MANIFEST.tmp` naming `n`, fsync, rename to `MANIFEST`
//! 3. truncate the WAL
//! 4. delete older `checkpoint-*.seg` (compaction: tombstoned
//!    collections and superseded values do not survive into `n`)
//!
//! A kill between any two steps recovers: before step 2 the old
//! manifest still names a complete older segment (plus the intact WAL);
//! after step 2 but before step 3 the WAL records are replayed on top
//! of the new segment, which is harmless because every record carries
//! the full new value (idempotent last-writer-wins).
//!
//! Opening defaults to *mapping* the published segment
//! ([`crate::mmap::SegmentMap`]) rather than reading it: the header and
//! directory are verified eagerly, decoded sections (collections,
//! vars, feedback, options) are CRC-checked at access, and the raw
//! index arrays are adopted zero-copy with *structural* validation in
//! place of a checksum — `GraphIndex::from_parts` re-verifies every
//! CSR entry against the decoded graphs, so corruption is still loud,
//! without faulting in gigabytes of cold index pages at open. Callers
//! wanting the old read-everything behavior (or full checksum
//! coverage on a mapped open) get it via [`OpenOptions`]. Deleting a
//! superseded segment while snapshots still hold its mapping is safe
//! on unix: the pages outlive the unlink.

use crate::codec::{
    decode_feedback, decode_index_parts, decode_index_parts_from, decode_options, encode_feedback,
    encode_index_parts_into, encode_options, StoredOptions,
};
use crate::mmap::SegmentMap;
use crate::segment::{Section, Segment, SegmentWriter};
use crate::wal::{Wal, WalRecord};
use crate::{Result, StoreError};
use gql_core::storage::{decode_collection, decode_graph, fnv1a, ByteSink};
use gql_core::{ByteBuffer, FeedbackStore, Graph, Obs};
use gql_match::IndexParts;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Arc;

const MANIFEST: &str = "MANIFEST";
const MANIFEST_MAGIC: &[u8; 4] = b"GMAN";
const WAL_FILE: &str = "wal.log";

const KIND_COLLECTION: &str = "collection";
const KIND_INDEXES: &str = "indexes";
const KIND_FEEDBACK: &str = "feedback";
const KIND_VAR: &str = "var";
const KIND_META: &str = "meta";
const META_OPTIONS: &str = "options";

/// How [`Store::open_with`] reads the published checkpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpenOptions {
    /// Map the checkpoint file and adopt its index arrays zero-copy
    /// (the default). `false` reads the whole file into memory and
    /// decodes owned copies — the pre-mmap behavior.
    pub mmap: bool,
    /// Verify every section checksum up front even on a mapped open
    /// (touches every byte of the file, like a non-mapped open does by
    /// construction).
    pub verify: bool,
}

impl Default for OpenOptions {
    fn default() -> Self {
        OpenOptions {
            mmap: true,
            verify: false,
        }
    }
}

/// Everything the engine wants durable at a checkpoint.
#[derive(Debug, Default)]
pub struct Snapshot {
    /// Index configuration the derived sections were built under.
    pub options: Option<StoredOptions>,
    /// Collections in engine order.
    pub collections: Vec<CollectionSnapshot>,
    /// Top-level variables as `(name, encode_graph bytes)`.
    pub vars: Vec<(String, Vec<u8>)>,
}

/// One collection's checkpoint state.
#[derive(Debug, Default)]
pub struct CollectionSnapshot {
    /// Collection name.
    pub name: String,
    /// `encode_collection` bytes of the full contents.
    pub payload: Vec<u8>,
    /// Per-graph raw index arrays (empty = not persisted; the reopen
    /// rebuilds from scratch).
    pub indexes: Vec<IndexParts>,
    /// Planner feedback recorded against this collection.
    pub feedback: Option<FeedbackStore>,
}

/// State recovered by [`Store::open`]: the published checkpoint with
/// the WAL folded on top.
#[derive(Debug, Default)]
pub struct Restored {
    /// Options the checkpoint's derived sections were built under.
    pub options: Option<StoredOptions>,
    /// Collections in checkpoint order (WAL-created ones appended in
    /// log order).
    pub collections: Vec<RestoredCollection>,
    /// Top-level variables.
    pub vars: Vec<(String, Graph)>,
    /// True when the index arrays are zero-copy views into a mapped
    /// checkpoint segment rather than owned decodes.
    pub mapped: bool,
}

/// One recovered collection.
#[derive(Debug)]
pub struct RestoredCollection {
    /// Collection name.
    pub name: String,
    /// The graphs, decoded and structurally validated.
    pub graphs: Vec<Graph>,
    /// Checkpointed index arrays; `None` when the collection was
    /// (re)written through the WAL after the checkpoint, or the
    /// checkpoint carried none.
    pub indexes: Option<Vec<IndexParts>>,
    /// Checkpointed planner feedback; `None` under the same conditions.
    pub feedback: Option<FeedbackStore>,
}

/// Handle on an open database directory.
#[derive(Debug)]
pub struct Store {
    dir: PathBuf,
    wal: Wal,
    next_seq: u64,
    obs: Option<Arc<Obs>>,
}

impl Store {
    /// Opens (creating if absent) the database directory with default
    /// options: the checkpoint segment is memory-mapped and adopted
    /// zero-copy. See [`Store::open_with`].
    pub fn open(dir: &Path) -> Result<(Store, Restored)> {
        Store::open_with(dir, OpenOptions::default())
    }

    /// [`Store::open_with`] without a metrics sink.
    pub fn open_with(dir: &Path, opts: OpenOptions) -> Result<(Store, Restored)> {
        Store::open_observed(dir, opts, None)
    }

    /// Opens (creating if absent) the database directory: removes
    /// in-flight `*.tmp` files, loads the manifest-published checkpoint
    /// segment (mapped or read per `opts`), replays the WAL on top
    /// (truncating any torn tail), and returns the recovered state.
    ///
    /// When `obs` is attached, the open records segment open counters
    /// (`storage.segment.open`, `.mapped`/`.owned`, `.verify_eager`),
    /// lazy per-section CRC checks (`storage.crc.lazy_checks` /
    /// `storage.crc_fail`), WAL replay/torn-tail counters, and the
    /// `storage.wal_size` / `storage.live_segment_bytes` gauges; the
    /// returned handle keeps recording WAL append/fsync latency and
    /// per-stage checkpoint timings for its lifetime.
    pub fn open_observed(
        dir: &Path,
        opts: OpenOptions,
        obs: Option<Arc<Obs>>,
    ) -> Result<(Store, Restored)> {
        fs::create_dir_all(dir)?;
        for entry in fs::read_dir(dir)? {
            let entry = entry?;
            if entry.path().extension().is_some_and(|e| e == "tmp") {
                let _ = fs::remove_file(entry.path());
            }
        }
        let mut restored = Restored::default();
        let mut seq = 0u64;
        let manifest_path = dir.join(MANIFEST);
        if manifest_path.exists() {
            seq = read_manifest(&manifest_path)?;
            let seg_path = dir.join(format!("checkpoint-{seq}.seg"));
            if let Some(obs) = &obs {
                obs.add("storage.segment.open", 1);
                if opts.verify {
                    obs.add("storage.segment.verify_eager", 1);
                }
            }
            restored = if opts.mmap {
                let segmap = SegmentMap::open(&seg_path)?;
                if let Some(obs) = &obs {
                    // is_mapped distinguishes a real mapping from the
                    // non-unix read-into-memory fallback.
                    obs.add(
                        if segmap.is_mapped() {
                            "storage.segment.mapped"
                        } else {
                            "storage.segment.owned"
                        },
                        1,
                    );
                }
                let map: Arc<dyn ByteBuffer> = Arc::new(segmap);
                let seg = Segment::open(map, opts.verify)?;
                if let Some(obs) = &obs {
                    obs.set_gauge("storage.live_segment_bytes", seg.byte_len() as u64);
                }
                // Lazy mode: per-section CRCs for decoded sections are
                // checked at access below; the raw index arrays rely on
                // structural validation instead.
                restore_segment(&seg, !opts.verify, true, obs.as_ref())?
            } else {
                // Read-into-memory path: Segment::parse verifies every
                // checksum while the bytes are hot.
                if let Some(obs) = &obs {
                    obs.add("storage.segment.owned", 1);
                }
                let seg = Segment::parse(fs::read(&seg_path)?)?;
                if let Some(obs) = &obs {
                    obs.set_gauge("storage.live_segment_bytes", seg.byte_len() as u64);
                }
                restore_segment(&seg, false, false, None)?
            };
        }
        let (wal, records) = Wal::open_observed(&dir.join(WAL_FILE), obs.clone())?;
        for rec in records {
            apply_record(&mut restored, rec)?;
        }
        Ok((
            Store {
                dir: dir.to_path_buf(),
                wal,
                next_seq: seq + 1,
                obs,
            },
            restored,
        ))
    }

    /// Appends one mutation record to the WAL; durable when it returns.
    pub fn log(&mut self, rec: &WalRecord) -> Result<()> {
        self.wal.append(rec)
    }

    /// Streams a checkpoint segment to disk, publishes it through the
    /// manifest, truncates the WAL, and deletes superseded segments.
    /// Section payloads — in particular the raw index arrays — are
    /// encoded straight into the file through the segment writer's
    /// fixed-size buffer with an incremental CRC; no section (let alone
    /// the segment) is materialized in memory first.
    pub fn checkpoint(&mut self, snap: &Snapshot) -> Result<()> {
        let _ckpt_span = self.obs.as_ref().map(|o| o.span("storage.checkpoint"));
        let seq = self.next_seq;
        let mut declared: Vec<(&str, &str)> = Vec::new();
        if snap.options.is_some() {
            declared.push((KIND_META, META_OPTIONS));
        }
        for c in &snap.collections {
            declared.push((KIND_COLLECTION, &c.name));
            if !c.indexes.is_empty() {
                declared.push((KIND_INDEXES, &c.name));
            }
            if c.feedback.is_some() {
                declared.push((KIND_FEEDBACK, &c.name));
            }
        }
        for (name, _) in &snap.vars {
            declared.push((KIND_VAR, name));
        }

        let tmp_path = self.dir.join(format!("checkpoint-{seq}.tmp"));
        let seg_name = format!("checkpoint-{seq}.seg");
        let write_span = self
            .obs
            .as_ref()
            .map(|o| o.span("storage.checkpoint.write"));
        let mut w = SegmentWriter::create(fs::File::create(&tmp_path)?, &declared)?;
        if let Some(options) = &snap.options {
            w.begin_section(KIND_META, META_OPTIONS);
            w.put_bytes(&encode_options(options));
            w.end_section();
        }
        for c in &snap.collections {
            w.begin_section(KIND_COLLECTION, &c.name);
            w.put_bytes(&c.payload);
            w.end_section();
            if !c.indexes.is_empty() {
                w.begin_section(KIND_INDEXES, &c.name);
                encode_index_parts_into(&mut w, &c.indexes);
                w.end_section();
            }
            if let Some(fb) = &c.feedback {
                w.begin_section(KIND_FEEDBACK, &c.name);
                w.put_bytes(&encode_feedback(fb));
                w.end_section();
            }
        }
        for (name, payload) in &snap.vars {
            w.begin_section(KIND_VAR, name);
            w.put_bytes(payload);
            w.end_section();
        }
        let file = w.finish()?;
        file.sync_all()?;
        drop(file);
        drop(write_span);
        {
            let _rename_span = self
                .obs
                .as_ref()
                .map(|o| o.span("storage.checkpoint.rename"));
            fs::rename(&tmp_path, self.dir.join(&seg_name))?;
            sync_dir(&self.dir);
        }
        {
            let _manifest_span = self
                .obs
                .as_ref()
                .map(|o| o.span("storage.checkpoint.manifest"));
            let mut manifest = Vec::with_capacity(16);
            manifest.extend_from_slice(MANIFEST_MAGIC);
            manifest.extend_from_slice(&seq.to_le_bytes());
            manifest.extend_from_slice(&fnv1a(&seq.to_le_bytes()).to_le_bytes());
            write_durable_rename(
                &self.dir.join("MANIFEST.tmp"),
                &self.dir.join(MANIFEST),
                &manifest,
            )?;
            sync_dir(&self.dir);
        }
        {
            let _truncate_span = self
                .obs
                .as_ref()
                .map(|o| o.span("storage.checkpoint.truncate"));
            self.wal.reset()?;
        }
        // Compaction: only the published segment survives on disk. A
        // snapshot still holding the old segment's mapping keeps its
        // pages alive (unix semantics); the directory entry goes now.
        let _compact_span = self
            .obs
            .as_ref()
            .map(|o| o.span("storage.checkpoint.compact"));
        for entry in fs::read_dir(&self.dir)? {
            let entry = entry?;
            let fname = entry.file_name();
            let fname = fname.to_string_lossy();
            if fname.starts_with("checkpoint-") && fname.ends_with(".seg") && *fname != *seg_name {
                let _ = fs::remove_file(entry.path());
            }
        }
        if let Some(obs) = &self.obs {
            obs.add("storage.checkpoints", 1);
            if let Ok(meta) = fs::metadata(self.dir.join(&seg_name)) {
                obs.set_gauge("storage.live_segment_bytes", meta.len());
            }
        }
        self.next_seq = seq + 1;
        Ok(())
    }

    /// The database directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Committed WAL size in bytes (0 right after a checkpoint).
    pub fn wal_size(&self) -> u64 {
        self.wal.size()
    }
}

/// Writes `bytes` to `tmp`, fsyncs, and renames onto `dst` — the
/// atomic-publish idiom both the segment and the manifest use.
fn write_durable_rename(tmp: &Path, dst: &Path, bytes: &[u8]) -> Result<()> {
    let mut f = fs::File::create(tmp)?;
    f.write_all(bytes)?;
    f.sync_all()?;
    drop(f);
    fs::rename(tmp, dst)?;
    Ok(())
}

/// Best-effort directory fsync so renames are durable; ignored on
/// filesystems that refuse to sync directories.
fn sync_dir(dir: &Path) {
    if let Ok(d) = fs::File::open(dir) {
        let _ = d.sync_all();
    }
}

fn read_manifest(path: &Path) -> Result<u64> {
    let bytes = fs::read(path)?;
    if bytes.len() != 16 || &bytes[..4] != MANIFEST_MAGIC {
        return Err(StoreError::Invalid("manifest malformed"));
    }
    let seq = u64::from_le_bytes(bytes[4..12].try_into().expect("length checked"));
    let crc = u32::from_le_bytes(bytes[12..16].try_into().expect("length checked"));
    if fnv1a(&seq.to_le_bytes()) != crc {
        return Err(StoreError::Invalid("manifest checksum"));
    }
    Ok(seq)
}

/// Hands back a section's payload, CRC-checking it first when the open
/// mode deferred checksums. Each deferred check is counted, and a
/// failure bumps `storage.crc_fail` (the `/healthz` degraded signal)
/// before the error propagates.
fn checked_bytes<'a>(
    sec: &Section<'a>,
    check_crc: bool,
    obs: Option<&Arc<Obs>>,
) -> Result<&'a [u8]> {
    if check_crc {
        if let Some(obs) = obs {
            obs.add("storage.crc.lazy_checks", 1);
        }
        if let Err(e) = sec.verify() {
            if let Some(obs) = obs {
                obs.add("storage.crc_fail", 1);
            }
            return Err(e);
        }
    }
    Ok(sec.bytes())
}

/// Decodes a segment into [`Restored`] state. `check_crc` re-verifies
/// decoded sections' checksums at access (the lazy-open mode); the raw
/// index sections are exempt — their arrays are adopted zero-copy and
/// validated structurally by `GraphIndex::from_parts` instead, so a
/// corrupt byte there surfaces as a loud reopen error, not a checksum
/// pass over gigabytes of cold pages. `mapped` selects zero-copy
/// adoption for the index arrays.
fn restore_segment(
    seg: &Segment,
    check_crc: bool,
    mapped: bool,
    obs: Option<&Arc<Obs>>,
) -> Result<Restored> {
    let mut restored = Restored {
        mapped,
        ..Restored::default()
    };
    if let Some(meta) = seg.find(KIND_META, META_OPTIONS) {
        restored.options = Some(decode_options(checked_bytes(&meta, check_crc, obs)?)?);
    }
    for sec in seg.sections() {
        match sec.kind() {
            KIND_COLLECTION => restored.collections.push(RestoredCollection {
                name: sec.name().to_string(),
                graphs: decode_collection(checked_bytes(&sec, check_crc, obs)?)?,
                indexes: None,
                feedback: None,
            }),
            KIND_VAR => restored.vars.push((
                sec.name().to_string(),
                decode_graph(checked_bytes(&sec, check_crc, obs)?)?,
            )),
            _ => {}
        }
    }
    // Attach derived sections to their collections by name; a derived
    // section without a matching collection is a malformed segment.
    for sec in seg.sections() {
        if sec.kind() != KIND_INDEXES && sec.kind() != KIND_FEEDBACK {
            continue;
        }
        let target = restored
            .collections
            .iter_mut()
            .find(|c| c.name == sec.name())
            .ok_or(StoreError::Invalid("derived section without collection"))?;
        if sec.kind() == KIND_INDEXES {
            target.indexes = Some(if mapped {
                decode_index_parts_from(seg.buffer(), sec.base(), sec.bytes().len())?
            } else {
                decode_index_parts(sec.bytes())?
            });
        } else {
            target.feedback = Some(decode_feedback(checked_bytes(&sec, check_crc, obs)?)?);
        }
    }
    Ok(restored)
}

/// Folds one WAL record into the restored state (last-writer-wins; a
/// rewritten collection drops its checkpointed derived sections, which
/// describe the superseded contents).
fn apply_record(restored: &mut Restored, rec: WalRecord) -> Result<()> {
    match rec {
        WalRecord::PutCollection { name, payload } => {
            let graphs = decode_collection(&payload)?;
            match restored.collections.iter_mut().find(|c| c.name == name) {
                Some(c) => {
                    c.graphs = graphs;
                    c.indexes = None;
                    c.feedback = None;
                }
                None => restored.collections.push(RestoredCollection {
                    name,
                    graphs,
                    indexes: None,
                    feedback: None,
                }),
            }
        }
        WalRecord::DeleteCollection { name } => {
            restored.collections.retain(|c| c.name != name);
        }
        WalRecord::PutVar { name, payload } => {
            let g = decode_graph(&payload)?;
            match restored.vars.iter_mut().find(|(n, _)| *n == name) {
                Some(slot) => slot.1 = g,
                None => restored.vars.push((name, g)),
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gql_core::fixtures::figure_4_16_graph;
    use gql_core::storage::{encode_collection, encode_graph};
    use gql_match::GraphIndex;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("gql-store-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample_snapshot() -> Snapshot {
        let (g, _) = figure_4_16_graph();
        let idx = GraphIndex::build_full(&g, 1);
        Snapshot {
            options: Some(StoredOptions {
                csr: true,
                prop_index: true,
                profiles: true,
                radius: 1,
            }),
            collections: vec![CollectionSnapshot {
                name: "db".into(),
                payload: encode_collection([&g]),
                indexes: vec![idx.to_parts()],
                feedback: Some(FeedbackStore::new()),
            }],
            vars: vec![("Q".into(), encode_graph(&g))],
        }
    }

    #[test]
    fn checkpoint_then_reopen_restores_everything() {
        let dir = tmpdir("roundtrip");
        let (mut store, restored) = Store::open(&dir).unwrap();
        assert!(restored.collections.is_empty() && restored.vars.is_empty());
        store.checkpoint(&sample_snapshot()).unwrap();
        drop(store);
        let (store, restored) = Store::open(&dir).unwrap();
        assert_eq!(restored.collections.len(), 1);
        let c = &restored.collections[0];
        assert_eq!(c.name, "db");
        assert_eq!(c.graphs.len(), 1);
        assert_eq!(c.graphs[0].node_count(), 6);
        assert!(c.indexes.is_some());
        assert!(c.feedback.is_some());
        assert!(restored.mapped, "default open maps the segment");
        assert_eq!(restored.vars.len(), 1);
        assert_eq!(restored.vars[0].0, "Q");
        assert_eq!(restored.options.as_ref().unwrap().radius, 1);
        assert_eq!(store.wal_size(), 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mapped_and_owned_opens_restore_equal_state() {
        let dir = tmpdir("mapowned");
        let (mut store, _) = Store::open(&dir).unwrap();
        store.checkpoint(&sample_snapshot()).unwrap();
        drop(store);
        let opts = [
            OpenOptions::default(),
            OpenOptions {
                mmap: true,
                verify: true,
            },
            OpenOptions {
                mmap: false,
                verify: true,
            },
        ];
        let restores: Vec<Restored> = opts
            .iter()
            .map(|&o| Store::open_with(&dir, o).unwrap().1)
            .collect();
        assert!(restores[0].mapped && restores[1].mapped && !restores[2].mapped);
        let want = &restores[2].collections[0];
        for r in &restores[..2] {
            let c = &r.collections[0];
            assert_eq!(c.indexes, want.indexes, "index parts differ across modes");
            assert_eq!(c.graphs.len(), want.graphs.len());
            assert_eq!(r.options, restores[2].options);
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn lazy_open_still_catches_corruption_loudly() {
        let dir = tmpdir("lazyflip");
        let (mut store, _) = Store::open(&dir).unwrap();
        store.checkpoint(&sample_snapshot()).unwrap();
        drop(store);
        let seg_path = dir.join("checkpoint-1.seg");
        let good = fs::read(&seg_path).unwrap();
        let seg = Segment::parse(good.clone()).unwrap();
        let want = Store::open_with(
            &dir,
            OpenOptions {
                mmap: false,
                verify: true,
            },
        )
        .unwrap()
        .1;

        // A flip in a decoded section (the collection payload) must be
        // caught by the lazy per-section CRC at access.
        let col = seg.find("collection", "db").unwrap();
        let mut bad = good.clone();
        bad[col.base() + col.bytes().len() / 2] ^= 0xff;
        fs::write(&seg_path, &bad).unwrap();
        assert!(Store::open(&dir).is_err(), "collection flip undetected");

        // Flips in the index section skip the CRC on lazy opens but
        // must still either fail structural validation at decode/adopt
        // or leave the decoded parts visibly different — never silently
        // equal, never UB. (from_parts runs in the engine; at the store
        // layer "different" is the loud signal.)
        let idx = seg.find("indexes", "db").unwrap();
        for frac in [3, 5, 7] {
            let mut bad = good.clone();
            bad[idx.base() + idx.bytes().len() * (frac - 1) / frac] ^= 0xff;
            fs::write(&seg_path, &bad).unwrap();
            match Store::open(&dir) {
                Err(_) => {}
                Ok((_, r)) => assert_ne!(
                    r.collections[0].indexes, want.collections[0].indexes,
                    "index flip at 1/{frac} decoded silently equal"
                ),
            }
        }
        // verify=true catches everything up front, mapped or not.
        assert!(Store::open_with(
            &dir,
            OpenOptions {
                mmap: true,
                verify: true
            }
        )
        .is_err());
        fs::write(&seg_path, &good).unwrap();
        assert!(Store::open(&dir).is_ok());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn wal_records_replay_over_checkpoint() {
        let dir = tmpdir("replay");
        let (mut store, _) = Store::open(&dir).unwrap();
        store.checkpoint(&sample_snapshot()).unwrap();
        let (g, _) = figure_4_16_graph();
        // Rewrite "db" with two graphs, add a collection, delete it,
        // and bind a var twice (last writer wins).
        store
            .log(&WalRecord::PutCollection {
                name: "db".into(),
                payload: encode_collection([&g, &g]),
            })
            .unwrap();
        store
            .log(&WalRecord::PutCollection {
                name: "tmp".into(),
                payload: encode_collection([&g]),
            })
            .unwrap();
        store
            .log(&WalRecord::DeleteCollection { name: "tmp".into() })
            .unwrap();
        let mut g2 = g.clone();
        g2.attrs.set("v", 2i64);
        store
            .log(&WalRecord::PutVar {
                name: "Q".into(),
                payload: encode_graph(&g),
            })
            .unwrap();
        store
            .log(&WalRecord::PutVar {
                name: "Q".into(),
                payload: encode_graph(&g2),
            })
            .unwrap();
        drop(store);
        let (_, restored) = Store::open(&dir).unwrap();
        assert_eq!(restored.collections.len(), 1, "tmp was tombstoned");
        let c = &restored.collections[0];
        assert_eq!(c.graphs.len(), 2, "rewritten contents win");
        assert!(c.indexes.is_none(), "rewrite drops stale indexes");
        assert!(c.feedback.is_none());
        assert_eq!(restored.vars.len(), 1);
        assert_eq!(
            restored.vars[0].1.attrs.get("v"),
            Some(&gql_core::Value::Int(2))
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn second_checkpoint_compacts_the_first() {
        let dir = tmpdir("compact");
        let (mut store, _) = Store::open(&dir).unwrap();
        store.checkpoint(&sample_snapshot()).unwrap();
        store.checkpoint(&sample_snapshot()).unwrap();
        let segs: Vec<String> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .filter(|n| n.ends_with(".seg"))
            .collect();
        assert_eq!(segs, vec!["checkpoint-2.seg".to_string()]);
        drop(store);
        let (store, restored) = Store::open(&dir).unwrap();
        assert_eq!(restored.collections.len(), 1);
        assert_eq!(store.next_seq, 3);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compaction_does_not_invalidate_live_mappings() {
        // A restored state adopted from checkpoint N keeps serving
        // after checkpoint N+1 deletes N's file out from under it.
        let dir = tmpdir("livecompact");
        let (mut store, _) = Store::open(&dir).unwrap();
        store.checkpoint(&sample_snapshot()).unwrap();
        drop(store);
        let (mut store, restored) = Store::open(&dir).unwrap();
        assert!(restored.mapped);
        let parts_before = restored.collections[0].indexes.clone().unwrap();
        store.checkpoint(&sample_snapshot()).unwrap(); // deletes checkpoint-1.seg
        assert!(!dir.join("checkpoint-1.seg").exists());
        // The old mapping's pages are still addressable through the
        // adopted slabs.
        assert_eq!(
            restored.collections[0].indexes.as_ref(),
            Some(&parts_before)
        );
        assert!(!parts_before.is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }

    /// Simulated kill at each stage of the checkpoint protocol: the
    /// directory must reopen to a consistent committed state.
    #[test]
    fn kill_mid_checkpoint_recovers() {
        let dir = tmpdir("kill");
        let (mut store, _) = Store::open(&dir).unwrap();
        store.checkpoint(&sample_snapshot()).unwrap();
        let (g, _) = figure_4_16_graph();
        store
            .log(&WalRecord::PutCollection {
                name: "extra".into(),
                payload: encode_collection([&g]),
            })
            .unwrap();
        drop(store);
        let manifest = fs::read(dir.join(MANIFEST)).unwrap();
        let wal = fs::read(dir.join(WAL_FILE)).unwrap();
        let seg1 = fs::read(dir.join("checkpoint-1.seg")).unwrap();

        // Stage A: killed while writing checkpoint-2.tmp (partial tmp).
        fs::write(dir.join("checkpoint-2.tmp"), &seg1[..seg1.len() / 2]).unwrap();
        let (_, r) = Store::open(&dir).unwrap();
        assert_eq!(r.collections.len(), 2, "stage A: checkpoint 1 + wal");
        assert!(!dir.join("checkpoint-2.tmp").exists(), "tmp cleaned up");

        // Stage B: killed after renaming checkpoint-2.seg but before
        // the manifest: old manifest still governs.
        fs::write(dir.join("checkpoint-2.seg"), &seg1).unwrap();
        fs::write(dir.join(MANIFEST), &manifest).unwrap();
        fs::write(dir.join(WAL_FILE), &wal).unwrap();
        let (_, r) = Store::open(&dir).unwrap();
        assert_eq!(r.collections.len(), 2, "stage B: still checkpoint 1 + wal");

        // Stage C: killed after publishing the new manifest but before
        // the WAL truncate: the record replays idempotently on top.
        let mut m2 = Vec::new();
        m2.extend_from_slice(MANIFEST_MAGIC);
        m2.extend_from_slice(&2u64.to_le_bytes());
        m2.extend_from_slice(&fnv1a(&2u64.to_le_bytes()).to_le_bytes());
        fs::write(dir.join(MANIFEST), &m2).unwrap();
        let (_, r) = Store::open(&dir).unwrap();
        assert_eq!(r.collections.len(), 2, "stage C: checkpoint 2 + wal replay");

        // Stage D: killed mid-manifest write would have left only
        // MANIFEST.tmp; the committed manifest still governs.
        fs::write(dir.join("MANIFEST.tmp"), [0u8; 3]).unwrap();
        let (_, r) = Store::open(&dir).unwrap();
        assert_eq!(r.collections.len(), 2, "stage D");
        assert!(!dir.join("MANIFEST.tmp").exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_manifest_is_loud() {
        let dir = tmpdir("badmanifest");
        let (mut store, _) = Store::open(&dir).unwrap();
        store.checkpoint(&sample_snapshot()).unwrap();
        drop(store);
        let mut m = fs::read(dir.join(MANIFEST)).unwrap();
        m[6] ^= 0xff;
        fs::write(dir.join(MANIFEST), &m).unwrap();
        assert!(Store::open(&dir).is_err());
        fs::remove_dir_all(&dir).unwrap();
    }
}
