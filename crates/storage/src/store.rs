//! The checkpoint/recovery protocol: a database directory holding one
//! published checkpoint segment, a manifest naming it, and the WAL of
//! mutations since.
//!
//! Directory contents:
//!
//! ```text
//! MANIFEST            "GMAN" | seq u64-le | crc u32-le
//! checkpoint-<n>.seg  the published segment (see [`crate::segment`])
//! wal.log             mutations since checkpoint <n>
//! *.tmp               in-flight writes; ignored and removed on open
//! ```
//!
//! Checkpoint protocol (each step durable before the next):
//!
//! 1. write `checkpoint-<n>.tmp`, fsync, rename to `checkpoint-<n>.seg`
//! 2. write `MANIFEST.tmp` naming `n`, fsync, rename to `MANIFEST`
//! 3. truncate the WAL
//! 4. delete older `checkpoint-*.seg` (compaction: tombstoned
//!    collections and superseded values do not survive into `n`)
//!
//! A kill between any two steps recovers: before step 2 the old
//! manifest still names a complete older segment (plus the intact WAL);
//! after step 2 but before step 3 the WAL records are replayed on top
//! of the new segment, which is harmless because every record carries
//! the full new value (idempotent last-writer-wins).

use crate::codec::{
    decode_feedback, decode_index_parts, decode_options, encode_feedback, encode_index_parts,
    encode_options, StoredOptions,
};
use crate::segment::{Segment, SegmentBuilder};
use crate::wal::{Wal, WalRecord};
use crate::{Result, StoreError};
use gql_core::storage::{decode_collection, decode_graph, fnv1a};
use gql_core::{FeedbackStore, Graph};
use gql_match::IndexParts;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

const MANIFEST: &str = "MANIFEST";
const MANIFEST_MAGIC: &[u8; 4] = b"GMAN";
const WAL_FILE: &str = "wal.log";

const KIND_COLLECTION: &str = "collection";
const KIND_INDEXES: &str = "indexes";
const KIND_FEEDBACK: &str = "feedback";
const KIND_VAR: &str = "var";
const KIND_META: &str = "meta";
const META_OPTIONS: &str = "options";

/// Everything the engine wants durable at a checkpoint.
#[derive(Debug, Default)]
pub struct Snapshot {
    /// Index configuration the derived sections were built under.
    pub options: Option<StoredOptions>,
    /// Collections in engine order.
    pub collections: Vec<CollectionSnapshot>,
    /// Top-level variables as `(name, encode_graph bytes)`.
    pub vars: Vec<(String, Vec<u8>)>,
}

/// One collection's checkpoint state.
#[derive(Debug, Default)]
pub struct CollectionSnapshot {
    /// Collection name.
    pub name: String,
    /// `encode_collection` bytes of the full contents.
    pub payload: Vec<u8>,
    /// Per-graph raw index arrays (empty = not persisted; the reopen
    /// rebuilds from scratch).
    pub indexes: Vec<IndexParts>,
    /// Planner feedback recorded against this collection.
    pub feedback: Option<FeedbackStore>,
}

/// State recovered by [`Store::open`]: the published checkpoint with
/// the WAL folded on top.
#[derive(Debug, Default)]
pub struct Restored {
    /// Options the checkpoint's derived sections were built under.
    pub options: Option<StoredOptions>,
    /// Collections in checkpoint order (WAL-created ones appended in
    /// log order).
    pub collections: Vec<RestoredCollection>,
    /// Top-level variables.
    pub vars: Vec<(String, Graph)>,
}

/// One recovered collection.
#[derive(Debug)]
pub struct RestoredCollection {
    /// Collection name.
    pub name: String,
    /// The graphs, decoded and structurally validated.
    pub graphs: Vec<Graph>,
    /// Checkpointed index arrays; `None` when the collection was
    /// (re)written through the WAL after the checkpoint, or the
    /// checkpoint carried none.
    pub indexes: Option<Vec<IndexParts>>,
    /// Checkpointed planner feedback; `None` under the same conditions.
    pub feedback: Option<FeedbackStore>,
}

/// Handle on an open database directory.
#[derive(Debug)]
pub struct Store {
    dir: PathBuf,
    wal: Wal,
    next_seq: u64,
}

impl Store {
    /// Opens (creating if absent) the database directory: removes
    /// in-flight `*.tmp` files, loads the manifest-published checkpoint
    /// segment, replays the WAL on top (truncating any torn tail), and
    /// returns the recovered state.
    pub fn open(dir: &Path) -> Result<(Store, Restored)> {
        fs::create_dir_all(dir)?;
        for entry in fs::read_dir(dir)? {
            let entry = entry?;
            if entry.path().extension().is_some_and(|e| e == "tmp") {
                let _ = fs::remove_file(entry.path());
            }
        }
        let mut restored = Restored::default();
        let mut seq = 0u64;
        let manifest_path = dir.join(MANIFEST);
        if manifest_path.exists() {
            seq = read_manifest(&manifest_path)?;
            let seg_bytes = fs::read(dir.join(format!("checkpoint-{seq}.seg")))?;
            restored = restore_segment(Segment::parse(seg_bytes)?)?;
        }
        let (wal, records) = Wal::open(&dir.join(WAL_FILE))?;
        for rec in records {
            apply_record(&mut restored, rec)?;
        }
        Ok((
            Store {
                dir: dir.to_path_buf(),
                wal,
                next_seq: seq + 1,
            },
            restored,
        ))
    }

    /// Appends one mutation record to the WAL; durable when it returns.
    pub fn log(&mut self, rec: &WalRecord) -> Result<()> {
        self.wal.append(rec)
    }

    /// Writes a checkpoint segment, publishes it through the manifest,
    /// truncates the WAL, and deletes superseded segments.
    pub fn checkpoint(&mut self, snap: &Snapshot) -> Result<()> {
        let seq = self.next_seq;
        let mut builder = SegmentBuilder::new();
        if let Some(options) = &snap.options {
            builder.push(KIND_META, META_OPTIONS, encode_options(options));
        }
        for c in &snap.collections {
            builder.push(KIND_COLLECTION, &c.name, c.payload.clone());
            if !c.indexes.is_empty() {
                builder.push(KIND_INDEXES, &c.name, encode_index_parts(&c.indexes));
            }
            if let Some(fb) = &c.feedback {
                builder.push(KIND_FEEDBACK, &c.name, encode_feedback(fb));
            }
        }
        for (name, payload) in &snap.vars {
            builder.push(KIND_VAR, name, payload.clone());
        }
        let seg_name = format!("checkpoint-{seq}.seg");
        write_durable_rename(
            &self.dir.join(format!("checkpoint-{seq}.tmp")),
            &self.dir.join(&seg_name),
            &builder.finish(),
        )?;
        sync_dir(&self.dir);
        let mut manifest = Vec::with_capacity(16);
        manifest.extend_from_slice(MANIFEST_MAGIC);
        manifest.extend_from_slice(&seq.to_le_bytes());
        manifest.extend_from_slice(&fnv1a(&seq.to_le_bytes()).to_le_bytes());
        write_durable_rename(
            &self.dir.join("MANIFEST.tmp"),
            &self.dir.join(MANIFEST),
            &manifest,
        )?;
        sync_dir(&self.dir);
        self.wal.reset()?;
        // Compaction: only the published segment survives.
        for entry in fs::read_dir(&self.dir)? {
            let entry = entry?;
            let fname = entry.file_name();
            let fname = fname.to_string_lossy();
            if fname.starts_with("checkpoint-") && fname.ends_with(".seg") && *fname != *seg_name {
                let _ = fs::remove_file(entry.path());
            }
        }
        self.next_seq = seq + 1;
        Ok(())
    }

    /// The database directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Committed WAL size in bytes (0 right after a checkpoint).
    pub fn wal_size(&self) -> u64 {
        self.wal.size()
    }
}

/// Writes `bytes` to `tmp`, fsyncs, and renames onto `dst` — the
/// atomic-publish idiom both the segment and the manifest use.
fn write_durable_rename(tmp: &Path, dst: &Path, bytes: &[u8]) -> Result<()> {
    let mut f = fs::File::create(tmp)?;
    f.write_all(bytes)?;
    f.sync_all()?;
    drop(f);
    fs::rename(tmp, dst)?;
    Ok(())
}

/// Best-effort directory fsync so renames are durable; ignored on
/// filesystems that refuse to sync directories.
fn sync_dir(dir: &Path) {
    if let Ok(d) = fs::File::open(dir) {
        let _ = d.sync_all();
    }
}

fn read_manifest(path: &Path) -> Result<u64> {
    let bytes = fs::read(path)?;
    if bytes.len() != 16 || &bytes[..4] != MANIFEST_MAGIC {
        return Err(StoreError::Invalid("manifest malformed"));
    }
    let seq = u64::from_le_bytes(bytes[4..12].try_into().expect("length checked"));
    let crc = u32::from_le_bytes(bytes[12..16].try_into().expect("length checked"));
    if fnv1a(&seq.to_le_bytes()) != crc {
        return Err(StoreError::Invalid("manifest checksum"));
    }
    Ok(seq)
}

fn restore_segment(seg: Segment) -> Result<Restored> {
    let mut restored = Restored::default();
    if let Some(meta) = seg.section(KIND_META, META_OPTIONS) {
        restored.options = Some(decode_options(meta)?);
    }
    for (kind, name, payload) in seg.sections() {
        match kind {
            KIND_COLLECTION => restored.collections.push(RestoredCollection {
                name: name.to_string(),
                graphs: decode_collection(payload)?,
                indexes: None,
                feedback: None,
            }),
            KIND_VAR => restored
                .vars
                .push((name.to_string(), decode_graph(payload)?)),
            _ => {}
        }
    }
    // Attach derived sections to their collections by name; a derived
    // section without a matching collection is a malformed segment.
    for (kind, name, payload) in seg.sections() {
        if kind != KIND_INDEXES && kind != KIND_FEEDBACK {
            continue;
        }
        let target = restored
            .collections
            .iter_mut()
            .find(|c| c.name == name)
            .ok_or(StoreError::Invalid("derived section without collection"))?;
        if kind == KIND_INDEXES {
            target.indexes = Some(decode_index_parts(payload)?);
        } else {
            target.feedback = Some(decode_feedback(payload)?);
        }
    }
    Ok(restored)
}

/// Folds one WAL record into the restored state (last-writer-wins; a
/// rewritten collection drops its checkpointed derived sections, which
/// describe the superseded contents).
fn apply_record(restored: &mut Restored, rec: WalRecord) -> Result<()> {
    match rec {
        WalRecord::PutCollection { name, payload } => {
            let graphs = decode_collection(&payload)?;
            match restored.collections.iter_mut().find(|c| c.name == name) {
                Some(c) => {
                    c.graphs = graphs;
                    c.indexes = None;
                    c.feedback = None;
                }
                None => restored.collections.push(RestoredCollection {
                    name,
                    graphs,
                    indexes: None,
                    feedback: None,
                }),
            }
        }
        WalRecord::DeleteCollection { name } => {
            restored.collections.retain(|c| c.name != name);
        }
        WalRecord::PutVar { name, payload } => {
            let g = decode_graph(&payload)?;
            match restored.vars.iter_mut().find(|(n, _)| *n == name) {
                Some(slot) => slot.1 = g,
                None => restored.vars.push((name, g)),
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gql_core::fixtures::figure_4_16_graph;
    use gql_core::storage::{encode_collection, encode_graph};
    use gql_match::GraphIndex;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("gql-store-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample_snapshot() -> Snapshot {
        let (g, _) = figure_4_16_graph();
        let idx = GraphIndex::build_full(&g, 1);
        Snapshot {
            options: Some(StoredOptions {
                csr: true,
                prop_index: true,
                profiles: true,
                radius: 1,
            }),
            collections: vec![CollectionSnapshot {
                name: "db".into(),
                payload: encode_collection([&g]),
                indexes: vec![idx.to_parts()],
                feedback: Some(FeedbackStore::new()),
            }],
            vars: vec![("Q".into(), encode_graph(&g))],
        }
    }

    #[test]
    fn checkpoint_then_reopen_restores_everything() {
        let dir = tmpdir("roundtrip");
        let (mut store, restored) = Store::open(&dir).unwrap();
        assert!(restored.collections.is_empty() && restored.vars.is_empty());
        store.checkpoint(&sample_snapshot()).unwrap();
        drop(store);
        let (store, restored) = Store::open(&dir).unwrap();
        assert_eq!(restored.collections.len(), 1);
        let c = &restored.collections[0];
        assert_eq!(c.name, "db");
        assert_eq!(c.graphs.len(), 1);
        assert_eq!(c.graphs[0].node_count(), 6);
        assert!(c.indexes.is_some());
        assert!(c.feedback.is_some());
        assert_eq!(restored.vars.len(), 1);
        assert_eq!(restored.vars[0].0, "Q");
        assert_eq!(restored.options.as_ref().unwrap().radius, 1);
        assert_eq!(store.wal_size(), 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn wal_records_replay_over_checkpoint() {
        let dir = tmpdir("replay");
        let (mut store, _) = Store::open(&dir).unwrap();
        store.checkpoint(&sample_snapshot()).unwrap();
        let (g, _) = figure_4_16_graph();
        // Rewrite "db" with two graphs, add a collection, delete it,
        // and bind a var twice (last writer wins).
        store
            .log(&WalRecord::PutCollection {
                name: "db".into(),
                payload: encode_collection([&g, &g]),
            })
            .unwrap();
        store
            .log(&WalRecord::PutCollection {
                name: "tmp".into(),
                payload: encode_collection([&g]),
            })
            .unwrap();
        store
            .log(&WalRecord::DeleteCollection { name: "tmp".into() })
            .unwrap();
        let mut g2 = g.clone();
        g2.attrs.set("v", 2i64);
        store
            .log(&WalRecord::PutVar {
                name: "Q".into(),
                payload: encode_graph(&g),
            })
            .unwrap();
        store
            .log(&WalRecord::PutVar {
                name: "Q".into(),
                payload: encode_graph(&g2),
            })
            .unwrap();
        drop(store);
        let (_, restored) = Store::open(&dir).unwrap();
        assert_eq!(restored.collections.len(), 1, "tmp was tombstoned");
        let c = &restored.collections[0];
        assert_eq!(c.graphs.len(), 2, "rewritten contents win");
        assert!(c.indexes.is_none(), "rewrite drops stale indexes");
        assert!(c.feedback.is_none());
        assert_eq!(restored.vars.len(), 1);
        assert_eq!(
            restored.vars[0].1.attrs.get("v"),
            Some(&gql_core::Value::Int(2))
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn second_checkpoint_compacts_the_first() {
        let dir = tmpdir("compact");
        let (mut store, _) = Store::open(&dir).unwrap();
        store.checkpoint(&sample_snapshot()).unwrap();
        store.checkpoint(&sample_snapshot()).unwrap();
        let segs: Vec<String> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .filter(|n| n.ends_with(".seg"))
            .collect();
        assert_eq!(segs, vec!["checkpoint-2.seg".to_string()]);
        drop(store);
        let (store, restored) = Store::open(&dir).unwrap();
        assert_eq!(restored.collections.len(), 1);
        assert_eq!(store.next_seq, 3);
        fs::remove_dir_all(&dir).unwrap();
    }

    /// Simulated kill at each stage of the checkpoint protocol: the
    /// directory must reopen to a consistent committed state.
    #[test]
    fn kill_mid_checkpoint_recovers() {
        let dir = tmpdir("kill");
        let (mut store, _) = Store::open(&dir).unwrap();
        store.checkpoint(&sample_snapshot()).unwrap();
        let (g, _) = figure_4_16_graph();
        store
            .log(&WalRecord::PutCollection {
                name: "extra".into(),
                payload: encode_collection([&g]),
            })
            .unwrap();
        drop(store);
        let manifest = fs::read(dir.join(MANIFEST)).unwrap();
        let wal = fs::read(dir.join(WAL_FILE)).unwrap();
        let seg1 = fs::read(dir.join("checkpoint-1.seg")).unwrap();

        // Stage A: killed while writing checkpoint-2.tmp (partial tmp).
        fs::write(dir.join("checkpoint-2.tmp"), &seg1[..seg1.len() / 2]).unwrap();
        let (_, r) = Store::open(&dir).unwrap();
        assert_eq!(r.collections.len(), 2, "stage A: checkpoint 1 + wal");
        assert!(!dir.join("checkpoint-2.tmp").exists(), "tmp cleaned up");

        // Stage B: killed after renaming checkpoint-2.seg but before
        // the manifest: old manifest still governs.
        fs::write(dir.join("checkpoint-2.seg"), &seg1).unwrap();
        fs::write(dir.join(MANIFEST), &manifest).unwrap();
        fs::write(dir.join(WAL_FILE), &wal).unwrap();
        let (_, r) = Store::open(&dir).unwrap();
        assert_eq!(r.collections.len(), 2, "stage B: still checkpoint 1 + wal");

        // Stage C: killed after publishing the new manifest but before
        // the WAL truncate: the record replays idempotently on top.
        let mut m2 = Vec::new();
        m2.extend_from_slice(MANIFEST_MAGIC);
        m2.extend_from_slice(&2u64.to_le_bytes());
        m2.extend_from_slice(&fnv1a(&2u64.to_le_bytes()).to_le_bytes());
        fs::write(dir.join(MANIFEST), &m2).unwrap();
        let (_, r) = Store::open(&dir).unwrap();
        assert_eq!(r.collections.len(), 2, "stage C: checkpoint 2 + wal replay");

        // Stage D: killed mid-manifest write would have left only
        // MANIFEST.tmp; the committed manifest still governs.
        fs::write(dir.join("MANIFEST.tmp"), [0u8; 3]).unwrap();
        let (_, r) = Store::open(&dir).unwrap();
        assert_eq!(r.collections.len(), 2, "stage D");
        assert!(!dir.join("MANIFEST.tmp").exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_manifest_is_loud() {
        let dir = tmpdir("badmanifest");
        let (mut store, _) = Store::open(&dir).unwrap();
        store.checkpoint(&sample_snapshot()).unwrap();
        drop(store);
        let mut m = fs::read(dir.join(MANIFEST)).unwrap();
        m[6] ^= 0xff;
        fs::write(dir.join(MANIFEST), &m).unwrap();
        assert!(Store::open(&dir).is_err());
        fs::remove_dir_all(&dir).unwrap();
    }
}
