//! Bulk loading: build a checkpoint-ready [`CollectionSnapshot`]
//! straight from sorted input, without ever materializing the mutable
//! [`gql_core::Graph`].
//!
//! The mutable graph pays per-edge hash-map probes (the duplicate-edge
//! index) and grows `Vec`-of-`Vec` adjacency; the bulk path instead
//! requires its input pre-sorted by source node and builds the CSR
//! arrays with one counting sort, the label tables with one interning
//! scan, and the interned profiles with the same zero-allocation BFS
//! the index build uses. The output is byte-compatible with what
//! [`Store::checkpoint`](crate::Store::checkpoint) writes for a
//! graph built the slow way, so a first open of a bulk-loaded
//! directory already takes the segment-read fast path.
//!
//! Validation mirrors [`Graph::add_edge`]: endpoints must be in range,
//! self-loops are rejected, and duplicate edges (either order for
//! undirected graphs) are rejected — plus the bulk-only requirement
//! that edge sources arrive in non-decreasing order.

use crate::codec::StoredOptions;
use crate::store::CollectionSnapshot;
use crate::{Result, StoreError};
use gql_core::storage::{encode_graph_data, put_varint};
use gql_core::{
    AdjacencyParts, CsrEntry, CsrGraph, CsrParts, EdgeData, GraphData, LabelInterner, NodeData,
    NodeId, ProfileScratch, Slab, Tuple, NO_LABEL,
};
use gql_match::IndexParts;

/// Accumulates sorted rows and assembles the snapshot.
#[derive(Debug)]
pub struct BulkLoader {
    directed: bool,
    nodes: Vec<NodeData>,
    edges: Vec<EdgeData>,
}

impl BulkLoader {
    /// An empty loader for a graph with the given edge direction.
    pub fn new(directed: bool) -> Self {
        BulkLoader {
            directed,
            nodes: Vec::new(),
            edges: Vec::new(),
        }
    }

    /// Appends a node; returns its id (dense, in insertion order).
    pub fn add_node(&mut self, attrs: Tuple) -> u32 {
        self.nodes.push(NodeData { name: None, attrs });
        (self.nodes.len() - 1) as u32
    }

    /// Appends an edge. Sources must arrive in non-decreasing order
    /// (the "sorted input" contract that lets the CSR build be a
    /// counting sort); endpoints must be existing nodes; self-loops
    /// are rejected here, duplicates at [`BulkLoader::into_snapshot`].
    pub fn add_edge(&mut self, src: u32, dst: u32, attrs: Tuple) -> Result<()> {
        if let Some(last) = self.edges.last() {
            if src < last.src {
                return Err(StoreError::Invalid("bulk input not sorted by source"));
            }
        }
        let n = self.nodes.len() as u32;
        if src >= n || dst >= n {
            return Err(StoreError::Invalid("edge endpoint out of range"));
        }
        if src == dst {
            return Err(StoreError::Invalid("self loops are not allowed"));
        }
        self.edges.push(EdgeData {
            name: None,
            src,
            dst,
            attrs,
        });
        Ok(())
    }

    /// Number of nodes added so far.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges added so far.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Builds the checkpoint-ready snapshot: collection payload bytes
    /// plus the [`IndexParts`] (label tables, CSR arrays, interned
    /// profiles) that let reopen skip the index build entirely.
    pub fn into_snapshot(self, name: &str, options: &StoredOptions) -> Result<CollectionSnapshot> {
        self.check_duplicates()?;
        // Label tables, interned in the same first-seen order as the
        // index build: all nodes, then all edges.
        let mut interner = LabelInterner::new();
        let node_label_ids: Vec<u32> = self
            .nodes
            .iter()
            .map(|n| {
                n.attrs
                    .get("label")
                    .map_or(NO_LABEL, |l| interner.intern(l))
            })
            .collect();
        let edge_label_ids: Vec<u32> = self
            .edges
            .iter()
            .map(|e| {
                e.attrs
                    .get("label")
                    .map_or(NO_LABEL, |l| interner.intern(l))
            })
            .collect();
        // CSR arrays by counting sort. Entries carry the *neighbor's*
        // node-label id, mirroring `CsrGraph::build`.
        let n = self.nodes.len();
        let entry = |to: u32, edge: usize| CsrEntry {
            label: node_label_ids[to as usize],
            node: to,
            edge: edge as u32,
        };
        let (out, inc, all) = if self.directed {
            (
                build_adjacency(n, &self.edges, |e, i| [(e.src, entry(e.dst, i))]),
                build_adjacency(n, &self.edges, |e, i| [(e.dst, entry(e.src, i))]),
                build_adjacency(n, &self.edges, |e, i| {
                    [(e.src, entry(e.dst, i)), (e.dst, entry(e.src, i))]
                }),
            )
        } else {
            (
                build_adjacency(n, &self.edges, |e, i| {
                    [(e.src, entry(e.dst, i)), (e.dst, entry(e.src, i))]
                }),
                AdjacencyParts::default(),
                AdjacencyParts::default(),
            )
        };
        let parts = CsrParts {
            directed: self.directed,
            node_labels: node_label_ids.clone().into(),
            out,
            inc,
            all,
        };
        // Round the arrays through the validating constructor — the
        // same gate a checkpointed segment passes at reopen — and run
        // the profile BFS on the validated snapshot.
        let csr =
            CsrGraph::from_parts(parts.clone()).map_err(|_| StoreError::Invalid("bulk csr"))?;
        let (profile_offsets, profile_ids) = if options.profiles {
            let radius = options.radius as usize;
            let mut scratch = ProfileScratch::new();
            let mut offsets: Vec<u32> = Vec::with_capacity(n + 1);
            offsets.push(0);
            let mut ids: Vec<u32> = Vec::new();
            for v in 0..n as u32 {
                ids.extend_from_slice(csr.id_profile(NodeId(v), radius, &mut scratch).ids());
                offsets.push(ids.len() as u32);
            }
            (Slab::from(offsets), Slab::from(ids))
        } else {
            (Slab::default(), Slab::default())
        };
        let index = IndexParts {
            interner_values: (0..interner.len() as u32)
                .map(|id| interner.resolve(id).clone())
                .collect(),
            node_label_ids: node_label_ids.into(),
            edge_label_ids: edge_label_ids.into(),
            csr: options.csr.then_some(parts),
            profile_offsets,
            profile_ids,
            radius: options.radius as usize,
            prop_index: options.prop_index,
        };
        // Collection payload: one length-prefixed graph frame, encoded
        // straight from the flat rows.
        let frame = encode_graph_data(&GraphData {
            name: None,
            attrs: Tuple::default(),
            directed: self.directed,
            nodes: self.nodes,
            edges: self.edges,
        });
        let mut payload = Vec::with_capacity(frame.len() + 4);
        put_varint(&mut payload, frame.len() as u64);
        payload.extend_from_slice(&frame);
        Ok(CollectionSnapshot {
            name: name.to_string(),
            payload,
            indexes: vec![index],
            feedback: None,
        })
    }

    /// Rejects duplicate edges: same `(src, dst)` for directed graphs,
    /// same unordered pair for undirected ones (mirroring the mutable
    /// graph's hash-index check, but as a sort + adjacent-equal scan).
    fn check_duplicates(&self) -> Result<()> {
        let mut pairs: Vec<(u32, u32)> = self
            .edges
            .iter()
            .map(|e| {
                if self.directed || e.src < e.dst {
                    (e.src, e.dst)
                } else {
                    (e.dst, e.src)
                }
            })
            .collect();
        pairs.sort_unstable();
        if pairs.windows(2).any(|w| w[0] == w[1]) {
            return Err(StoreError::Invalid("duplicate edge"));
        }
        Ok(())
    }
}

/// Counting-sort CSR construction: one pass to count row degrees, a
/// prefix sum for the offsets, one pass to place entries, then a
/// per-row sort into the `(label, node, edge)` order every CSR
/// consumer binary-searches on.
fn build_adjacency<const K: usize, F>(n: usize, edges: &[EdgeData], emit: F) -> AdjacencyParts
where
    F: Fn(&EdgeData, usize) -> [(u32, CsrEntry); K],
{
    let mut offsets = vec![0u32; n + 1];
    for (i, e) in edges.iter().enumerate() {
        for (row, _) in emit(e, i) {
            offsets[row as usize + 1] += 1;
        }
    }
    for i in 0..n {
        offsets[i + 1] += offsets[i];
    }
    let mut cursor = offsets.clone();
    let mut entries = vec![CsrEntry::default(); offsets[n] as usize];
    for (i, e) in edges.iter().enumerate() {
        for (row, entry) in emit(e, i) {
            let slot = cursor[row as usize] as usize;
            entries[slot] = entry;
            cursor[row as usize] += 1;
        }
    }
    for w in offsets.windows(2) {
        entries[w[0] as usize..w[1] as usize].sort_unstable_by_key(|e| (e.label, e.node, e.edge));
    }
    AdjacencyParts {
        offsets: offsets.into(),
        entries: entries.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gql_core::storage::decode_collection;
    use gql_core::Graph;
    use gql_match::{GraphIndex, IndexOptions};

    fn labeled(label: &str, extra: Option<(&str, i64)>) -> Tuple {
        let mut t = Tuple::default();
        t.set("label", label);
        if let Some((k, v)) = extra {
            t.set(k, v);
        }
        t
    }

    fn opts() -> StoredOptions {
        StoredOptions {
            csr: true,
            prop_index: true,
            profiles: true,
            radius: 1,
        }
    }

    /// The bulk-built snapshot must be indistinguishable from building
    /// the same graph mutably and checkpointing it: identical decoded
    /// graph, identical `IndexParts`.
    #[test]
    fn bulk_load_matches_mutable_build() {
        for directed in [false, true] {
            // Bulk path.
            let mut bl = BulkLoader::new(directed);
            for i in 0..6 {
                let label = if i % 2 == 0 { "P" } else { "Q" };
                bl.add_node(labeled(label, Some(("uid", i))));
            }
            let edges: [(u32, u32, &str); 6] = [
                (0, 1, "knows"),
                (0, 3, "works"),
                (1, 2, "knows"),
                (2, 5, "works"),
                (3, 4, "knows"),
                (4, 5, "knows"),
            ];
            for &(s, d, l) in &edges {
                bl.add_edge(s, d, labeled(l, None)).unwrap();
            }
            let snap = bl.into_snapshot("db", &opts()).unwrap();

            // Mutable path over the same rows.
            let mut g = if directed {
                Graph::new_directed()
            } else {
                Graph::new()
            };
            for i in 0..6 {
                let label = if i % 2 == 0 { "P" } else { "Q" };
                g.add_node(labeled(label, Some(("uid", i))));
            }
            for &(s, d, l) in &edges {
                g.add_edge(NodeId(s), NodeId(d), labeled(l, None)).unwrap();
            }
            let idx = GraphIndex::build_with(&g, &IndexOptions::default());

            // Payload decodes to the same graph.
            let decoded = decode_collection(&snap.payload).unwrap();
            assert_eq!(decoded.len(), 1);
            assert_eq!(decoded[0].node_count(), g.node_count());
            assert_eq!(decoded[0].edge_count(), g.edge_count());
            for v in g.node_ids() {
                assert_eq!(decoded[0].node(v).attrs, g.node(v).attrs);
            }
            // Index parts are byte-for-byte the mutable build's.
            assert_eq!(snap.indexes.len(), 1);
            assert_eq!(snap.indexes[0], idx.to_parts(), "directed={directed}");
            // And they pass the validating reopen against the decoded
            // graph.
            GraphIndex::from_parts(&decoded[0], snap.indexes[0].clone()).unwrap();
        }
    }

    #[test]
    fn invalid_input_is_rejected() {
        let mut bl = BulkLoader::new(false);
        bl.add_node(labeled("P", None));
        bl.add_node(labeled("P", None));
        bl.add_node(labeled("P", None));
        assert!(bl.add_edge(0, 0, Tuple::default()).is_err(), "self loop");
        assert!(bl.add_edge(0, 7, Tuple::default()).is_err(), "range");
        bl.add_edge(1, 2, Tuple::default()).unwrap();
        assert!(bl.add_edge(0, 1, Tuple::default()).is_err(), "unsorted");
        // Duplicate in the other order (undirected) is caught at finish.
        bl.add_edge(2, 1, Tuple::default()).unwrap();
        assert!(bl.into_snapshot("db", &opts()).is_err());
    }
}
