//! Memory-mapped checkpoint files: the zero-copy byte source behind
//! mapped segment adoption.
//!
//! [`SegmentMap`] maps a whole checkpoint file read-only via a thin
//! inline FFI layer (`mmap`/`munmap`/`madvise` declared `extern "C"`,
//! no external crates) and exposes it as a [`ByteBuffer`] — the trait
//! `gql_core::Slab` borrows typed views from. Opening is O(1) in the
//! file size: no bytes are read until a reader actually touches them,
//! so cold-open cost is the manifest plus the segment header and
//! directory, and resident memory tracks the working set rather than
//! the file size.
//!
//! Two properties the storage layer leans on:
//!
//! - The backing file descriptor is closed as soon as the mapping is
//!   established. On unix, mapped pages stay valid after the file is
//!   closed *and after the path is unlinked* — which is exactly what
//!   checkpoint compaction needs: a snapshot can keep serving from a
//!   superseded segment while the store deletes it from the directory.
//! - The mapping is private and read-only (`PROT_READ | MAP_PRIVATE`),
//!   so nothing the process does can write through to the checkpoint.
//!
//! On non-unix targets the same type transparently falls back to
//! reading the file into an owned `Vec<u8>`; every consumer sees the
//! identical [`ByteBuffer`] interface and identical bytes.

use gql_core::ByteBuffer;
use std::io;
use std::path::Path;

#[cfg(unix)]
mod sys {
    use std::ffi::c_void;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> i32;
        pub fn madvise(addr: *mut c_void, len: usize, advice: i32) -> i32;
    }

    pub const PROT_READ: i32 = 1;
    pub const MAP_PRIVATE: i32 = 2;
    /// Disable readahead: checkpoint access is directory-driven, not
    /// sequential, and skipping readahead keeps resident memory pinned
    /// to the pages queries actually touch.
    pub const MADV_RANDOM: i32 = 1;
}

/// A read-only view of one checkpoint file, memory-mapped on unix and
/// read into memory elsewhere. See the module docs for the contract.
#[derive(Debug)]
pub struct SegmentMap {
    #[cfg(unix)]
    ptr: *mut std::ffi::c_void,
    #[cfg(unix)]
    len: usize,
    #[cfg(not(unix))]
    data: Vec<u8>,
}

// Safety: the mapping is immutable (PROT_READ) for its whole lifetime
// and owned uniquely by this struct, so shared references to its bytes
// are sound from any thread.
#[cfg(unix)]
unsafe impl Send for SegmentMap {}
#[cfg(unix)]
unsafe impl Sync for SegmentMap {}

impl SegmentMap {
    /// Maps `path` read-only. The file handle is closed before this
    /// returns; the mapping (and the pages behind it) outlive both the
    /// handle and any later unlink of the path.
    #[cfg(unix)]
    pub fn open(path: &Path) -> io::Result<SegmentMap> {
        use std::os::unix::io::AsRawFd;

        let file = std::fs::File::open(path)?;
        let len = usize::try_from(file.metadata()?.len()).map_err(|_| {
            io::Error::new(io::ErrorKind::InvalidData, "segment exceeds address space")
        })?;
        if len == 0 {
            // Zero-length mmap is EINVAL; an empty file needs no pages.
            return Ok(SegmentMap {
                ptr: std::ptr::null_mut(),
                len: 0,
            });
        }
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ,
                sys::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr as isize == -1 {
            return Err(io::Error::last_os_error());
        }
        // Advisory only — a failure just means default readahead.
        unsafe { sys::madvise(ptr, len, sys::MADV_RANDOM) };
        Ok(SegmentMap { ptr, len })
    }

    /// Non-unix fallback: read the file into memory. Same interface,
    /// same bytes, no fault-in economics.
    #[cfg(not(unix))]
    pub fn open(path: &Path) -> io::Result<SegmentMap> {
        Ok(SegmentMap {
            data: std::fs::read(path)?,
        })
    }

    /// The mapped length in bytes.
    pub fn len(&self) -> usize {
        self.bytes().len()
    }

    /// True when the file was empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True when the bytes come from a real memory mapping rather than
    /// the read-into-memory fallback — the honest answer for the
    /// `storage.segment.mapped` / `.owned` open counters, which would
    /// otherwise over-report mapping on non-unix targets.
    pub fn is_mapped(&self) -> bool {
        cfg!(unix)
    }
}

impl ByteBuffer for SegmentMap {
    #[cfg(unix)]
    fn bytes(&self) -> &[u8] {
        if self.len == 0 {
            return &[];
        }
        // Safety: `ptr` is a live PROT_READ mapping of exactly `len`
        // bytes until Drop, and the mapping is never mutated.
        unsafe { std::slice::from_raw_parts(self.ptr.cast::<u8>(), self.len) }
    }

    #[cfg(not(unix))]
    fn bytes(&self) -> &[u8] {
        &self.data
    }
}

#[cfg(unix)]
impl Drop for SegmentMap {
    fn drop(&mut self) {
        if self.len > 0 {
            // Safety: `ptr`/`len` are the exact mapping established in
            // `open`, unmapped exactly once.
            unsafe { sys::munmap(self.ptr, self.len) };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("gql-mmap-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn maps_file_contents_and_page_alignment() {
        let dir = tmp_dir("basic");
        let path = dir.join("f.bin");
        let payload: Vec<u8> = (0..10_000u32).flat_map(|v| v.to_le_bytes()).collect();
        fs::write(&path, &payload).unwrap();
        let map = SegmentMap::open(&path).unwrap();
        assert_eq!(map.bytes(), &payload[..]);
        assert_eq!(map.len(), payload.len());
        assert!(!map.is_empty());
        #[cfg(unix)]
        assert!(
            (map.bytes().as_ptr() as usize).is_multiple_of(crate::segment::PAGE_SIZE),
            "mapped base must be page-aligned"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_file_maps_to_empty_slice() {
        let dir = tmp_dir("empty");
        let path = dir.join("empty.bin");
        fs::write(&path, b"").unwrap();
        let map = SegmentMap::open(&path).unwrap();
        assert!(map.is_empty());
        assert_eq!(map.bytes(), &[] as &[u8]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mapping_survives_unlink() {
        // The compaction contract: deleting the checkpoint file must
        // not invalidate a live mapping of it.
        let dir = tmp_dir("unlink");
        let path = dir.join("doomed.bin");
        fs::write(&path, vec![0xabu8; 8192]).unwrap();
        let map = SegmentMap::open(&path).unwrap();
        fs::remove_file(&path).unwrap();
        assert!(map.bytes().iter().all(|&b| b == 0xab));
        drop(map);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_file_is_an_io_error() {
        let dir = tmp_dir("missing");
        assert!(SegmentMap::open(&dir.join("nope.bin")).is_err());
        fs::remove_dir_all(&dir).unwrap();
    }
}
