//! The GraphQL → Datalog translations of §3.5 (Figures 4.14 and 4.15),
//! backing Theorem 4.6 (GraphQL ⊆ Datalog).

use crate::eval::FactStore;
use crate::lang::{Atom, BodyItem, Program, Rule, Term};
use gql_core::{BinOp, Graph, Value};
use gql_match::{Expr, Pattern};

/// Entity id for node `i` of graph `gname`: `"G.v0"` style.
fn node_id(gname: &str, i: u32) -> Value {
    Value::Str(format!("{gname}.v{i}"))
}

/// Entity id for edge `i`.
fn edge_id(gname: &str, i: u32) -> Value {
    Value::Str(format!("{gname}.e{i}"))
}

/// Translates a graph into facts (Figure 4.14):
/// `graph('G')`, `node('G','G.v1')`, `edge('G','G.e1','G.v1','G.v2')`
/// (written twice for undirected graphs), and
/// `attribute(entity, name, value)` for every attribute of the graph,
/// its nodes, and its edges (the figure shows graph attributes; nodes
/// and edges are translated uniformly).
pub fn graph_to_facts(g: &Graph, facts: &mut FactStore) -> String {
    let gname = g.name.clone().unwrap_or_else(|| "G".to_string());
    let gval = Value::Str(gname.clone());
    facts.insert("graph", vec![gval.clone()]);
    for (n, v) in g.attrs.iter() {
        facts.insert("attribute", vec![gval.clone(), n.into(), v.clone()]);
    }
    if let Some(tag) = g.attrs.tag() {
        facts.insert("tag", vec![gval.clone(), tag.into()]);
    }
    for (id, node) in g.nodes() {
        let nid = node_id(&gname, id.0);
        facts.insert("node", vec![gval.clone(), nid.clone()]);
        for (n, v) in node.attrs.iter() {
            facts.insert("attribute", vec![nid.clone(), n.into(), v.clone()]);
        }
        if let Some(tag) = node.attrs.tag() {
            facts.insert("tag", vec![nid.clone(), tag.into()]);
        }
    }
    for (id, e) in g.edges() {
        let eid = edge_id(&gname, id.0);
        let (s, d) = (node_id(&gname, e.src.0), node_id(&gname, e.dst.0));
        facts.insert(
            "edge",
            vec![gval.clone(), eid.clone(), s.clone(), d.clone()],
        );
        if !g.is_directed() {
            // "For undirected graphs, we need to write an edge twice to
            // permute its end nodes."
            facts.insert("edge", vec![gval.clone(), eid.clone(), d, s]);
        }
        for (n, v) in e.attrs.iter() {
            facts.insert("attribute", vec![eid.clone(), n.into(), v.clone()]);
        }
    }
    gname
}

/// Translates a compiled pattern into a rule (Figure 4.15). The head is
/// `match(P, V0, ..., Vk)`; the body joins `graph`/`node`/`edge` atoms,
/// adds `attribute` atoms + comparisons for the predicates, pairwise
/// `!=` for injectivity (subgraph isomorphism is injective,
/// Definition 4.2), and tuple-constraint atoms for motif attributes.
pub fn pattern_to_rule(p: &Pattern, head_pred: &str) -> Rule {
    let gvar = Term::var("P");
    let node_var = |i: usize| Term::var(format!("V{i}"));
    let edge_var = |i: usize| Term::var(format!("E{i}"));

    let mut body = vec![BodyItem::Atom(Atom::new("graph", vec![gvar.clone()]))];
    let mut fresh = 0usize;

    for (i, (_, n)) in p.graph.nodes().enumerate() {
        body.push(BodyItem::Atom(Atom::new(
            "node",
            vec![gvar.clone(), node_var(i)],
        )));
        // Motif tuple constraints: attribute(Vi, 'name', const).
        for (name, v) in n.attrs.iter() {
            body.push(BodyItem::Atom(Atom::new(
                "attribute",
                vec![node_var(i), Term::val(name), Term::Const(v.clone())],
            )));
        }
        if let Some(tag) = n.attrs.tag() {
            body.push(BodyItem::Atom(Atom::new(
                "tag",
                vec![node_var(i), Term::val(tag)],
            )));
        }
    }
    for (j, (_, e)) in p.graph.edges().enumerate() {
        body.push(BodyItem::Atom(Atom::new(
            "edge",
            vec![
                gvar.clone(),
                edge_var(j),
                node_var(e.src.index()),
                node_var(e.dst.index()),
            ],
        )));
        for (name, v) in e.attrs.iter() {
            body.push(BodyItem::Atom(Atom::new(
                "attribute",
                vec![edge_var(j), Term::val(name), Term::Const(v.clone())],
            )));
        }
    }
    // Injectivity.
    let k = p.graph.node_count();
    for i in 0..k {
        for j in (i + 1)..k {
            body.push(BodyItem::Compare {
                lhs: node_var(i),
                op: BinOp::Ne,
                rhs: node_var(j),
            });
        }
    }
    // Predicates: node, edge, and global conjuncts.
    let all_preds = p
        .node_preds
        .iter()
        .flatten()
        .chain(p.edge_preds.iter().flatten())
        .chain(p.global_preds.iter());
    for pred in all_preds {
        translate_pred(pred, &gvar, &mut body, &mut fresh);
    }

    let mut head_terms = vec![gvar];
    head_terms.extend((0..k).map(node_var));
    Rule {
        head: Atom::new(head_pred, head_terms),
        body,
    }
}

/// Translates a comparison predicate into `attribute` joins + a built-in
/// comparison, following Figure 4.15's
/// `attribute(P, 'attr1', Temp), Temp > value1` scheme. Conjunctions
/// split; other connectives (disjunction) would need multiple rules and
/// are rejected by `try_translate` (see [`pattern_to_program`]).
fn translate_pred(e: &Expr, gvar: &Term, body: &mut Vec<BodyItem>, fresh: &mut usize) {
    if let Expr::Binary {
        op: BinOp::And,
        lhs,
        rhs,
    } = e
    {
        translate_pred(lhs, gvar, body, fresh);
        translate_pred(rhs, gvar, body, fresh);
        return;
    }
    if let Expr::Binary { op, lhs, rhs } = e {
        if matches!(
            op,
            BinOp::Eq | BinOp::Ne | BinOp::Gt | BinOp::Ge | BinOp::Lt | BinOp::Le
        ) {
            let l = operand_term(lhs, gvar, body, fresh);
            let r = operand_term(rhs, gvar, body, fresh);
            if let (Some(l), Some(r)) = (l, r) {
                body.push(BodyItem::Compare {
                    lhs: l,
                    op: *op,
                    rhs: r,
                });
                return;
            }
        }
    }
    // Unsupported shape: make the rule never fire rather than silently
    // over-approximate.
    body.push(BodyItem::Compare {
        lhs: Term::val(0),
        op: BinOp::Ne,
        rhs: Term::val(0),
    });
}

fn operand_term(
    e: &Expr,
    gvar: &Term,
    body: &mut Vec<BodyItem>,
    fresh: &mut usize,
) -> Option<Term> {
    match e {
        Expr::Literal(v) => Some(Term::Const(v.clone())),
        Expr::NodeAttr { node, attr } => {
            *fresh += 1;
            let t = Term::var(format!("T{fresh}"));
            body.push(BodyItem::Atom(Atom::new(
                "attribute",
                vec![
                    Term::var(format!("V{node}")),
                    Term::val(attr.as_str()),
                    t.clone(),
                ],
            )));
            Some(t)
        }
        Expr::EdgeAttr { edge, attr } => {
            *fresh += 1;
            let t = Term::var(format!("T{fresh}"));
            body.push(BodyItem::Atom(Atom::new(
                "attribute",
                vec![
                    Term::var(format!("E{edge}")),
                    Term::val(attr.as_str()),
                    t.clone(),
                ],
            )));
            Some(t)
        }
        Expr::GraphAttr { attr } => {
            *fresh += 1;
            let t = Term::var(format!("T{fresh}"));
            body.push(BodyItem::Atom(Atom::new(
                "attribute",
                vec![gvar.clone(), Term::val(attr.as_str()), t.clone()],
            )));
            Some(t)
        }
        Expr::Binary { .. } => None,
    }
}

/// Builds a one-rule program for the pattern with head predicate
/// `match`.
pub fn pattern_to_program(p: &Pattern) -> Program {
    let mut prog = Program::new();
    prog.push(pattern_to_rule(p, "match"));
    prog
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::evaluate;
    use gql_core::fixtures::{figure_4_16_graph, figure_4_16_pattern, figure_4_7_paper};
    use gql_match::{match_pattern, GraphIndex, MatchOptions};

    fn datalog_match_count(g: &Graph, p: &Pattern) -> usize {
        let mut facts = FactStore::new();
        graph_to_facts(g, &mut facts);
        let prog = pattern_to_program(p);
        evaluate(&prog, &mut facts);
        facts.count("match")
    }

    fn matcher_count(g: &Graph, p: &Pattern) -> usize {
        let idx = GraphIndex::build(g);
        match_pattern(p, g, &idx, &MatchOptions::baseline())
            .mappings
            .len()
    }

    #[test]
    fn figure_4_14_fact_shapes() {
        let g = figure_4_7_paper();
        let mut facts = FactStore::new();
        let name = graph_to_facts(&g, &mut facts);
        assert_eq!(name, "G");
        assert_eq!(facts.count("graph"), 1);
        assert_eq!(facts.count("node"), 3);
        assert_eq!(facts.count("edge"), 0);
        assert!(facts.contains(
            "attribute",
            &["G.v0".into(), "title".into(), "Title1".into()]
        ));
        assert!(facts.contains("tag", &["G".into(), "inproceedings".into()]));
        assert!(facts.contains("tag", &["G.v1".into(), "author".into()]));
    }

    #[test]
    fn undirected_edges_written_twice() {
        let (g, _) = figure_4_16_graph();
        let mut facts = FactStore::new();
        graph_to_facts(&g, &mut facts);
        assert_eq!(facts.count("edge"), 12);
    }

    #[test]
    fn triangle_pattern_agrees_with_matcher() {
        let (g, _) = figure_4_16_graph();
        let p = Pattern::structural(figure_4_16_pattern());
        assert_eq!(datalog_match_count(&g, &p), matcher_count(&g, &p));
        assert_eq!(datalog_match_count(&g, &p), 1);
    }

    #[test]
    fn predicate_pattern_agrees_with_matcher() {
        use gql_match::Expr;
        let g = figure_4_7_paper();
        let mut motif = Graph::new();
        motif.add_node(gql_core::Tuple::new());
        let p = Pattern::new(
            motif,
            vec![Expr::binary(
                BinOp::Gt,
                Expr::node_attr(0, "year"),
                Expr::Literal(2000.into()),
            )],
        );
        assert_eq!(datalog_match_count(&g, &p), 1);
        assert_eq!(datalog_match_count(&g, &p), matcher_count(&g, &p));
    }

    #[test]
    fn unlabeled_edge_pattern_counts_ordered_mappings() {
        let (g, _) = figure_4_16_graph();
        let mut motif = Graph::new();
        let a = motif.add_node(gql_core::Tuple::new());
        let b = motif.add_node(gql_core::Tuple::new());
        motif.add_edge(a, b, gql_core::Tuple::new()).unwrap();
        let p = Pattern::structural(motif);
        assert_eq!(datalog_match_count(&g, &p), 12);
        assert_eq!(matcher_count(&g, &p), 12);
    }

    #[test]
    fn figure_4_15_rule_rendering() {
        let p = Pattern::structural(figure_4_16_pattern());
        let rule = pattern_to_rule(&p, "Pattern");
        let s = rule.to_string();
        assert!(s.starts_with("Pattern(P, V0, V1, V2) :- graph(P)"), "{s}");
        assert!(s.contains("edge(P, E0, V0, V1)"), "{s}");
        assert!(s.contains("V0 != V1"), "{s}");
    }
}
