//! Bottom-up semi-naive evaluation.

use crate::lang::{Atom, BodyItem, Program, Rule, Term};
use gql_core::{BinOp, Value};
use rustc_hash::{FxHashMap, FxHashSet};

/// The extensional + derived fact store: `pred → set of tuples`.
#[derive(Debug, Clone, Default)]
pub struct FactStore {
    relations: FxHashMap<String, FxHashSet<Vec<Value>>>,
}

impl FactStore {
    /// Empty store.
    pub fn new() -> Self {
        FactStore::default()
    }

    /// Inserts a fact; returns true if new.
    pub fn insert(&mut self, pred: impl Into<String>, tuple: Vec<Value>) -> bool {
        self.relations.entry(pred.into()).or_default().insert(tuple)
    }

    /// All tuples of a predicate.
    pub fn tuples(&self, pred: &str) -> impl Iterator<Item = &Vec<Value>> {
        self.relations.get(pred).into_iter().flatten()
    }

    /// Number of tuples in a predicate.
    pub fn count(&self, pred: &str) -> usize {
        self.relations.get(pred).map_or(0, |s| s.len())
    }

    /// Membership test.
    pub fn contains(&self, pred: &str, tuple: &[Value]) -> bool {
        self.relations.get(pred).is_some_and(|s| s.contains(tuple))
    }

    /// Total fact count.
    pub fn len(&self) -> usize {
        self.relations.values().map(|s| s.len()).sum()
    }

    /// True if no facts.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

type Bindings = FxHashMap<String, Value>;

fn unify_atom(atom: &Atom, tuple: &[Value], env: &Bindings) -> Option<Bindings> {
    if atom.terms.len() != tuple.len() {
        return None;
    }
    let mut env = env.clone();
    for (t, v) in atom.terms.iter().zip(tuple) {
        match t {
            Term::Const(c) => {
                if c != v {
                    return None;
                }
            }
            Term::Var(name) => match env.get(name) {
                Some(bound) => {
                    if bound != v {
                        return None;
                    }
                }
                None => {
                    env.insert(name.clone(), v.clone());
                }
            },
        }
    }
    Some(env)
}

fn term_value(t: &Term, env: &Bindings) -> Option<Value> {
    match t {
        Term::Const(c) => Some(c.clone()),
        Term::Var(v) => env.get(v).cloned(),
    }
}

fn compare_holds(lhs: &Term, op: BinOp, rhs: &Term, env: &Bindings) -> bool {
    let (Some(a), Some(b)) = (term_value(lhs, env), term_value(rhs, env)) else {
        return false; // unbound built-in arguments: unsafe rule, fails
    };
    match op {
        BinOp::Eq => a == b,
        BinOp::Ne => a != b,
        BinOp::Gt | BinOp::Ge | BinOp::Lt | BinOp::Le => match a.compare(&b) {
            None => false,
            Some(ord) => match op {
                BinOp::Gt => ord.is_gt(),
                BinOp::Ge => ord.is_ge(),
                BinOp::Lt => ord.is_lt(),
                BinOp::Le => ord.is_le(),
                _ => unreachable!(),
            },
        },
        // And/Or/arith are not comparison builtins; reject.
        _ => false,
    }
}

/// Joins rule body left-to-right; `delta_at` forces body atom `i` to
/// range over the delta relation (semi-naive evaluation).
fn eval_rule(
    rule: &Rule,
    full: &FactStore,
    delta: Option<(&FactStore, usize)>,
    out: &mut Vec<Vec<Value>>,
) {
    fn recurse(
        rule: &Rule,
        full: &FactStore,
        delta: Option<(&FactStore, usize)>,
        item: usize,
        atom_index: usize,
        env: &Bindings,
        out: &mut Vec<Vec<Value>>,
    ) {
        if item == rule.body.len() {
            let tuple: Vec<Value> = rule
                .head
                .terms
                .iter()
                .map(|t| term_value(t, env).expect("head variables must be bound (safe rules)"))
                .collect();
            out.push(tuple);
            return;
        }
        match &rule.body[item] {
            BodyItem::Compare { lhs, op, rhs } => {
                if compare_holds(lhs, *op, rhs, env) {
                    recurse(rule, full, delta, item + 1, atom_index, env, out);
                }
            }
            BodyItem::Atom(a) => {
                let store = match delta {
                    Some((d, i)) if i == atom_index => d,
                    _ => full,
                };
                for tuple in store.tuples(&a.pred) {
                    if let Some(env2) = unify_atom(a, tuple, env) {
                        recurse(rule, full, delta, item + 1, atom_index + 1, &env2, out);
                    }
                }
            }
        }
    }
    recurse(rule, full, delta, 0, 0, &Bindings::default(), out);
}

/// Runs the program to fixpoint over `facts` (mutated in place),
/// returning the number of derived facts.
pub fn evaluate(program: &Program, facts: &mut FactStore) -> usize {
    let mut derived_total = 0usize;

    // Round 0 (naive): every rule over the full store.
    let mut delta = FactStore::new();
    for rule in &program.rules {
        let mut out = Vec::new();
        eval_rule(rule, facts, None, &mut out);
        for t in out {
            if facts.insert(rule.head.pred.clone(), t.clone()) {
                delta.insert(rule.head.pred.clone(), t);
                derived_total += 1;
            }
        }
    }

    // Semi-naive rounds: at least one body atom must range over delta.
    while !delta.is_empty() {
        let mut next_delta = FactStore::new();
        for rule in &program.rules {
            let n_atoms = rule
                .body
                .iter()
                .filter(|b| matches!(b, BodyItem::Atom(_)))
                .count();
            for i in 0..n_atoms {
                let mut out = Vec::new();
                eval_rule(rule, facts, Some((&delta, i)), &mut out);
                for t in out {
                    if facts.insert(rule.head.pred.clone(), t.clone()) {
                        next_delta.insert(rule.head.pred.clone(), t);
                        derived_total += 1;
                    }
                }
            }
        }
        delta = next_delta;
    }
    derived_total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lang::{Atom, BodyItem, Rule, Term};

    fn edge(a: &str, b: &str) -> (String, Vec<Value>) {
        ("edge".into(), vec![a.into(), b.into()])
    }

    #[test]
    fn transitive_closure() {
        let mut facts = FactStore::new();
        for (p, t) in [edge("a", "b"), edge("b", "c"), edge("c", "d")] {
            facts.insert(p, t);
        }
        let mut prog = Program::new();
        // path(X,Y) :- edge(X,Y).
        prog.push(Rule {
            head: Atom::new("path", vec![Term::var("X"), Term::var("Y")]),
            body: vec![BodyItem::Atom(Atom::new(
                "edge",
                vec![Term::var("X"), Term::var("Y")],
            ))],
        });
        // path(X,Z) :- path(X,Y), edge(Y,Z).
        prog.push(Rule {
            head: Atom::new("path", vec![Term::var("X"), Term::var("Z")]),
            body: vec![
                BodyItem::Atom(Atom::new("path", vec![Term::var("X"), Term::var("Y")])),
                BodyItem::Atom(Atom::new("edge", vec![Term::var("Y"), Term::var("Z")])),
            ],
        });
        let derived = evaluate(&prog, &mut facts);
        assert_eq!(facts.count("path"), 6, "ab ac ad bc bd cd");
        assert_eq!(derived, 6);
        assert!(facts.contains("path", &["a".into(), "d".into()]));
        assert!(!facts.contains("path", &["d".into(), "a".into()]));
    }

    #[test]
    fn comparisons_filter() {
        let mut facts = FactStore::new();
        facts.insert("n", vec![Value::Int(1)]);
        facts.insert("n", vec![Value::Int(5)]);
        facts.insert("n", vec![Value::Int(9)]);
        let mut prog = Program::new();
        // big(X) :- n(X), X > 3.
        prog.push(Rule {
            head: Atom::new("big", vec![Term::var("X")]),
            body: vec![
                BodyItem::Atom(Atom::new("n", vec![Term::var("X")])),
                BodyItem::Compare {
                    lhs: Term::var("X"),
                    op: BinOp::Gt,
                    rhs: Term::val(3),
                },
            ],
        });
        evaluate(&prog, &mut facts);
        assert_eq!(facts.count("big"), 2);
    }

    #[test]
    fn constants_in_atoms_unify() {
        let mut facts = FactStore::new();
        facts.insert("p", vec!["a".into(), "x".into()]);
        facts.insert("p", vec!["b".into(), "y".into()]);
        let mut prog = Program::new();
        // q(Y) :- p('a', Y).
        prog.push(Rule {
            head: Atom::new("q", vec![Term::var("Y")]),
            body: vec![BodyItem::Atom(Atom::new(
                "p",
                vec![Term::val("a"), Term::var("Y")],
            ))],
        });
        evaluate(&prog, &mut facts);
        assert_eq!(facts.count("q"), 1);
        assert!(facts.contains("q", &["x".into()]));
    }

    #[test]
    fn inequality_builtin_for_injectivity() {
        let mut facts = FactStore::new();
        facts.insert("v", vec!["a".into()]);
        facts.insert("v", vec!["b".into()]);
        let mut prog = Program::new();
        // pair(X,Y) :- v(X), v(Y), X != Y.
        prog.push(Rule {
            head: Atom::new("pair", vec![Term::var("X"), Term::var("Y")]),
            body: vec![
                BodyItem::Atom(Atom::new("v", vec![Term::var("X")])),
                BodyItem::Atom(Atom::new("v", vec![Term::var("Y")])),
                BodyItem::Compare {
                    lhs: Term::var("X"),
                    op: BinOp::Ne,
                    rhs: Term::var("Y"),
                },
            ],
        });
        evaluate(&prog, &mut facts);
        assert_eq!(facts.count("pair"), 2);
    }

    #[test]
    fn arity_mismatch_never_unifies() {
        let mut facts = FactStore::new();
        facts.insert("p", vec!["a".into()]);
        let mut prog = Program::new();
        prog.push(Rule {
            head: Atom::new("q", vec![Term::var("X")]),
            body: vec![BodyItem::Atom(Atom::new(
                "p",
                vec![Term::var("X"), Term::var("Y")],
            ))],
        });
        evaluate(&prog, &mut facts);
        assert_eq!(facts.count("q"), 0);
    }
}
