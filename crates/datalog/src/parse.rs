//! A small text syntax for Datalog programs and facts.
//!
//! ```text
//! path(X, Y) :- edge(X, Y).
//! path(X, Z) :- path(X, Y), edge(Y, Z), X != Z.
//! edge('a', 'b').
//! big(X) :- n(X), X > 3.
//! ```
//!
//! Conventions: identifiers starting with an uppercase letter are
//! variables; quoted strings and numbers are constants; lowercase bare
//! identifiers are string constants (Prolog style). `%` starts a
//! comment.

use crate::eval::FactStore;
use crate::lang::{Atom, BodyItem, Program, Rule, Term};
use gql_core::{BinOp, Value};
use std::fmt;

/// Parse error with position.
#[derive(Debug, Clone, PartialEq)]
pub struct DatalogParseError {
    /// Message.
    pub message: String,
    /// Byte offset in the input.
    pub offset: usize,
}

impl fmt::Display for DatalogParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "datalog parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for DatalogParseError {}

type Result<T> = std::result::Result<T, DatalogParseError>;

struct P<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> P<'a> {
    fn err<T>(&self, m: impl Into<String>) -> Result<T> {
        Err(DatalogParseError {
            message: m.into(),
            offset: self.pos,
        })
    }

    fn skip_ws(&mut self) {
        loop {
            while self.pos < self.src.len() && self.src[self.pos].is_ascii_whitespace() {
                self.pos += 1;
            }
            if self.pos < self.src.len() && self.src[self.pos] == b'%' {
                while self.pos < self.src.len() && self.src[self.pos] != b'\n' {
                    self.pos += 1;
                }
            } else {
                return;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn eat(&mut self, c: u8) -> bool {
        if self.peek() == Some(c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, c: u8) -> Result<()> {
        if self.eat(c) {
            Ok(())
        } else {
            self.err(format!("expected {:?}", c as char))
        }
    }

    fn ident(&mut self) -> Result<String> {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_alphanumeric() || c == b'_')
        {
            self.pos += 1;
        }
        if start == self.pos {
            return self.err("expected identifier");
        }
        Ok(std::str::from_utf8(&self.src[start..self.pos])
            .expect("ascii")
            .to_string())
    }

    fn term(&mut self) -> Result<Term> {
        self.skip_ws();
        match self.peek() {
            Some(b'\'') | Some(b'"') => {
                let quote = self.src[self.pos];
                self.pos += 1;
                let start = self.pos;
                while self.peek().is_some_and(|c| c != quote) {
                    self.pos += 1;
                }
                if self.peek().is_none() {
                    return self.err("unterminated string");
                }
                let s = std::str::from_utf8(&self.src[start..self.pos])
                    .map_err(|_| DatalogParseError {
                        message: "invalid utf8 in string".into(),
                        offset: start,
                    })?
                    .to_string();
                self.pos += 1;
                Ok(Term::Const(Value::Str(s)))
            }
            Some(c) if c.is_ascii_digit() || c == b'-' => {
                let start = self.pos;
                self.pos += 1;
                let mut float = false;
                loop {
                    match self.peek() {
                        Some(c) if c.is_ascii_digit() => self.pos += 1,
                        // A dot is a decimal point only when a digit
                        // follows; otherwise it terminates the clause.
                        Some(b'.')
                            if !float
                                && self.src.get(self.pos + 1).is_some_and(u8::is_ascii_digit) =>
                        {
                            float = true;
                            self.pos += 1;
                        }
                        _ => break,
                    }
                }
                let text = std::str::from_utf8(&self.src[start..self.pos]).expect("ascii");
                if float {
                    text.parse::<f64>()
                        .map(|f| Term::Const(Value::Float(f)))
                        .or_else(|e| self.err(format!("bad float {text:?}: {e}")))
                } else {
                    text.parse::<i64>()
                        .map(|i| Term::Const(Value::Int(i)))
                        .or_else(|e| self.err(format!("bad int {text:?}: {e}")))
                }
            }
            Some(c) if c.is_ascii_alphabetic() || c == b'_' => {
                let name = self.ident()?;
                if name.as_bytes()[0].is_ascii_uppercase() || name.starts_with('_') {
                    Ok(Term::Var(name))
                } else {
                    Ok(Term::Const(Value::Str(name)))
                }
            }
            _ => self.err("expected term"),
        }
    }

    fn atom(&mut self) -> Result<Atom> {
        self.skip_ws();
        let pred = self.ident()?;
        self.skip_ws();
        self.expect(b'(')?;
        let mut terms = Vec::new();
        self.skip_ws();
        if !self.eat(b')') {
            loop {
                terms.push(self.term()?);
                self.skip_ws();
                if self.eat(b')') {
                    break;
                }
                self.expect(b',')?;
            }
        }
        Ok(Atom::new(pred, terms))
    }

    fn body_item(&mut self) -> Result<BodyItem> {
        self.skip_ws();
        // Look ahead: `term OP term` (comparison) vs `ident(` (atom).
        let save = self.pos;
        if let Ok(name) = self.ident() {
            self.skip_ws();
            if self.peek() == Some(b'(') {
                self.pos = save;
                return Ok(BodyItem::Atom(self.atom()?));
            }
            self.pos = save;
            let _ = name;
        } else {
            self.pos = save;
        }
        // Comparison.
        let lhs = self.term()?;
        self.skip_ws();
        let op = if self.eat(b'!') {
            self.expect(b'=')?;
            BinOp::Ne
        } else if self.eat(b'=') {
            self.eat(b'='); // accept = and ==
            BinOp::Eq
        } else if self.eat(b'<') {
            if self.eat(b'=') {
                BinOp::Le
            } else if self.eat(b'>') {
                BinOp::Ne
            } else {
                BinOp::Lt
            }
        } else if self.eat(b'>') {
            if self.eat(b'=') {
                BinOp::Ge
            } else {
                BinOp::Gt
            }
        } else {
            return self.err("expected comparison operator");
        };
        let rhs = self.term()?;
        Ok(BodyItem::Compare { lhs, op, rhs })
    }
}

/// Parses a program: rules and ground facts. Facts go into the returned
/// [`FactStore`]; rules into the [`Program`].
pub fn parse_datalog(src: &str) -> Result<(Program, FactStore)> {
    let mut p = P {
        src: src.as_bytes(),
        pos: 0,
    };
    let mut program = Program::new();
    let mut facts = FactStore::new();
    loop {
        p.skip_ws();
        if p.peek().is_none() {
            return Ok((program, facts));
        }
        let head = p.atom()?;
        p.skip_ws();
        if p.eat(b'.') {
            // Ground fact.
            let tuple: Option<Vec<Value>> = head
                .terms
                .iter()
                .map(|t| match t {
                    Term::Const(v) => Some(v.clone()),
                    Term::Var(_) => None,
                })
                .collect();
            match tuple {
                Some(t) => {
                    facts.insert(head.pred, t);
                }
                None => return p.err("facts must be ground (no variables)"),
            }
            continue;
        }
        p.expect(b':')?;
        p.expect(b'-')?;
        let mut body = vec![p.body_item()?];
        loop {
            p.skip_ws();
            if p.eat(b'.') {
                break;
            }
            p.expect(b',')?;
            body.push(p.body_item()?);
        }
        program.push(Rule { head, body });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::evaluate;

    #[test]
    fn parses_and_evaluates_transitive_closure() {
        let (prog, mut facts) = parse_datalog(
            r#"
            % a chain
            edge(a, b). edge(b, c). edge(c, d).
            path(X, Y) :- edge(X, Y).
            path(X, Z) :- path(X, Y), edge(Y, Z).
            "#,
        )
        .unwrap();
        assert_eq!(prog.rules.len(), 2);
        evaluate(&prog, &mut facts);
        assert_eq!(facts.count("path"), 6);
    }

    #[test]
    fn comparisons_and_numbers() {
        let (prog, mut facts) = parse_datalog(
            r#"
            n(1). n(5). n(9).
            big(X) :- n(X), X > 3.
            pair(X, Y) :- n(X), n(Y), X != Y, X < Y.
            "#,
        )
        .unwrap();
        evaluate(&prog, &mut facts);
        assert_eq!(facts.count("big"), 2);
        assert_eq!(facts.count("pair"), 3);
    }

    #[test]
    fn quoted_constants_and_zero_arity() {
        let (prog, mut facts) = parse_datalog(
            r#"
            label('G.v1', "A").
            ok() :- label(X, 'A').
            "#,
        )
        .unwrap();
        evaluate(&prog, &mut facts);
        assert_eq!(facts.count("ok"), 1);
    }

    #[test]
    fn error_cases() {
        assert!(parse_datalog("p(X).").is_err(), "non-ground fact");
        assert!(parse_datalog("p(a) :- q(b)").is_err(), "missing period");
        assert!(parse_datalog("p(a :- q(b).").is_err());
        assert!(parse_datalog("p(a) :- X ? Y.").is_err());
        let e = parse_datalog("p('unterminated).").unwrap_err();
        assert!(e.to_string().contains("unterminated"));
    }

    #[test]
    fn float_terms() {
        let (prog, mut facts) = parse_datalog("m(1.5). m(2.5). big(X) :- m(X), X >= 2.0.").unwrap();
        evaluate(&prog, &mut facts);
        assert_eq!(facts.count("big"), 1);
    }
}
