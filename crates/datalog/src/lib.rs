//! # gql-datalog — Datalog substrate for the expressiveness results
//!
//! §3.5 of *"Graphs-at-a-time"* proves GraphQL ⊆ Datalog by translating
//! graphs into facts (Figure 4.14) and patterns into rules
//! (Figure 4.15). This crate makes that proof executable:
//!
//! - [`lang`]: terms, atoms, rules, programs;
//! - [`eval`]: bottom-up semi-naive evaluation to fixpoint, with
//!   comparison built-ins;
//! - [`translate`]: the two translations, tested for agreement with the
//!   optimized matcher in `gql-match`.

#![warn(missing_docs)]

pub mod eval;
pub mod lang;
pub mod parse;
pub mod translate;

pub use eval::{evaluate, FactStore};
pub use lang::{Atom, BodyItem, Program, Rule, Term};
pub use parse::{parse_datalog, DatalogParseError};
pub use translate::{graph_to_facts, pattern_to_program, pattern_to_rule};
