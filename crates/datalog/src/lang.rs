//! Datalog terms, atoms, rules, and programs.

use gql_core::{BinOp, Value};
use std::fmt;

/// A term: a variable or a constant.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Term {
    /// A logic variable (`V2`, `Temp`).
    Var(String),
    /// A constant value (`'G.v1'`, `2006`).
    Const(Value),
}

impl Term {
    /// Variable constructor.
    pub fn var(s: impl Into<String>) -> Term {
        Term::Var(s.into())
    }

    /// Constant constructor.
    pub fn val(v: impl Into<Value>) -> Term {
        Term::Const(v.into())
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "{v}"),
            Term::Const(c) => write!(f, "{c}"),
        }
    }
}

/// A predicate atom `pred(t1, ..., tk)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Atom {
    /// Predicate symbol.
    pub pred: String,
    /// Argument terms.
    pub terms: Vec<Term>,
}

impl Atom {
    /// Constructor.
    pub fn new(pred: impl Into<String>, terms: Vec<Term>) -> Atom {
        Atom {
            pred: pred.into(),
            terms,
        }
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.pred)?;
        for (i, t) in self.terms.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ")")
    }
}

/// A body literal: a positive atom or a built-in comparison.
#[derive(Debug, Clone, PartialEq)]
pub enum BodyItem {
    /// Positive atom to join against the fact store.
    Atom(Atom),
    /// Built-in comparison (`Temp > 2000`, `V1 != V2`). Both sides must
    /// be bound by earlier atoms when evaluated.
    Compare {
        /// Left term.
        lhs: Term,
        /// Operator (comparison subset of [`BinOp`]).
        op: BinOp,
        /// Right term.
        rhs: Term,
    },
}

impl fmt::Display for BodyItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BodyItem::Atom(a) => write!(f, "{a}"),
            BodyItem::Compare { lhs, op, rhs } => write!(f, "{lhs} {op} {rhs}"),
        }
    }
}

/// A Horn rule `head :- body`.
#[derive(Debug, Clone, PartialEq)]
pub struct Rule {
    /// Head atom.
    pub head: Atom,
    /// Body literals.
    pub body: Vec<BodyItem>,
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} :- ", self.head)?;
        for (i, b) in self.body.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{b}")?;
        }
        write!(f, ".")
    }
}

/// A Datalog program: a set of rules.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Program {
    /// The rules.
    pub rules: Vec<Rule>,
}

impl Program {
    /// Empty program.
    pub fn new() -> Self {
        Program::default()
    }

    /// Adds a rule.
    pub fn push(&mut self, r: Rule) {
        self.rules.push(r);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        let r = Rule {
            head: Atom::new("Pattern", vec![Term::var("P"), Term::var("V2")]),
            body: vec![
                BodyItem::Atom(Atom::new("graph", vec![Term::var("P")])),
                BodyItem::Compare {
                    lhs: Term::var("Temp"),
                    op: BinOp::Gt,
                    rhs: Term::val(2000),
                },
            ],
        };
        assert_eq!(r.to_string(), "Pattern(P, V2) :- graph(P), Temp > 2000.");
    }
}
