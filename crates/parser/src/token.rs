//! Tokens of the GraphQL surface syntax (Appendix 4.A).

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    // Keywords
    /// `graph`
    Graph,
    /// `node`
    Node,
    /// `edge`
    Edge,
    /// `unify`
    Unify,
    /// `where`
    Where,
    /// `for`
    For,
    /// `in`
    In,
    /// `doc`
    Doc,
    /// `exhaustive`
    Exhaustive,
    /// `return`
    Return,
    /// `let`
    Let,
    /// `as`
    As,
    /// `export`
    Export,
    /// `and` — accepted alias for `&` (used in Figure 4.8 of the paper)
    And,
    /// `or` — accepted alias for `|`
    Or,

    // Literals and identifiers
    /// Identifier.
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal (unescaped contents).
    Str(String),

    // Punctuation
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `.`
    Dot,
    /// `=`
    Assign,
    /// `:=`
    ColonAssign,
    /// `|`
    Pipe,
    /// `&`
    Amp,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `<` — also the opening tuple delimiter
    Lt,
    /// `<=`
    Le,
    /// `>` — also the closing tuple delimiter
    Gt,
    /// `>=`
    Ge,

    /// End of input.
    Eof,
}

impl Token {
    /// Keyword lookup for an identifier-shaped lexeme.
    pub fn keyword(s: &str) -> Option<Token> {
        Some(match s {
            "graph" => Token::Graph,
            "node" => Token::Node,
            "edge" => Token::Edge,
            "unify" => Token::Unify,
            "where" => Token::Where,
            "for" => Token::For,
            "in" => Token::In,
            "doc" => Token::Doc,
            "exhaustive" => Token::Exhaustive,
            "return" => Token::Return,
            "let" => Token::Let,
            "as" => Token::As,
            "export" => Token::Export,
            "and" => Token::And,
            "or" => Token::Or,
            _ => return None,
        })
    }
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Graph => write!(f, "graph"),
            Token::Node => write!(f, "node"),
            Token::Edge => write!(f, "edge"),
            Token::Unify => write!(f, "unify"),
            Token::Where => write!(f, "where"),
            Token::For => write!(f, "for"),
            Token::In => write!(f, "in"),
            Token::Doc => write!(f, "doc"),
            Token::Exhaustive => write!(f, "exhaustive"),
            Token::Return => write!(f, "return"),
            Token::Let => write!(f, "let"),
            Token::As => write!(f, "as"),
            Token::Export => write!(f, "export"),
            Token::And => write!(f, "and"),
            Token::Or => write!(f, "or"),
            Token::Ident(s) => write!(f, "{s}"),
            Token::Int(i) => write!(f, "{i}"),
            Token::Float(x) => write!(f, "{x}"),
            Token::Str(s) => write!(f, "{s:?}"),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::LBrace => write!(f, "{{"),
            Token::RBrace => write!(f, "}}"),
            Token::Comma => write!(f, ","),
            Token::Semi => write!(f, ";"),
            Token::Dot => write!(f, "."),
            Token::Assign => write!(f, "="),
            Token::ColonAssign => write!(f, ":="),
            Token::Pipe => write!(f, "|"),
            Token::Amp => write!(f, "&"),
            Token::Plus => write!(f, "+"),
            Token::Minus => write!(f, "-"),
            Token::Star => write!(f, "*"),
            Token::Slash => write!(f, "/"),
            Token::EqEq => write!(f, "=="),
            Token::NotEq => write!(f, "!="),
            Token::Lt => write!(f, "<"),
            Token::Le => write!(f, "<="),
            Token::Gt => write!(f, ">"),
            Token::Ge => write!(f, ">="),
            Token::Eof => write!(f, "<EOF>"),
        }
    }
}

/// A token with its source position (1-based line/column).
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    /// The token.
    pub token: Token,
    /// Line number, 1-based.
    pub line: u32,
    /// Column number, 1-based.
    pub col: u32,
}
