//! Recursive-descent parser for the Appendix 4.A grammar.

use crate::ast::*;
use crate::error::{ParseError, Result};
use crate::lexer::lex;
use crate::token::{Spanned, Token};
use gql_core::{BinOp, Value};

/// Parses a whole program (`Start ::= (GraphPattern ";" | FLWRExpr ";" |
/// ID ":=" GraphTemplate ";")* <EOF>`).
pub fn parse_program(src: &str) -> Result<Program> {
    let mut p = Parser::new(src)?;
    let mut statements = Vec::new();
    while !p.at(&Token::Eof) {
        statements.push(p.statement()?);
    }
    Ok(Program { statements })
}

/// Parses a single graph pattern, e.g. for embedding in an API call.
pub fn parse_pattern(src: &str) -> Result<GraphPatternAst> {
    let mut p = Parser::new(src)?;
    let pat = p.graph_pattern()?;
    p.eat(&Token::Semi).ok(); // optional trailing semicolon
    p.expect(Token::Eof)?;
    Ok(pat)
}

/// Parses a single expression (handy for tests and the REPL-ish APIs).
pub fn parse_expr(src: &str) -> Result<ExprAst> {
    let mut p = Parser::new(src)?;
    let e = p.expr()?;
    p.expect(Token::Eof)?;
    Ok(e)
}

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn new(src: &str) -> Result<Self> {
        Ok(Parser {
            tokens: lex(src)?,
            pos: 0,
        })
    }

    fn peek(&self) -> &Token {
        &self.tokens[self.pos].token
    }

    fn peek2(&self) -> &Token {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)].token
    }

    fn at(&self, t: &Token) -> bool {
        self.peek() == t
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos].token.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, msg: impl Into<String>) -> ParseError {
        let s = &self.tokens[self.pos];
        ParseError::syntax(msg, s.line, s.col)
    }

    fn expect(&mut self, t: Token) -> Result<()> {
        if self.at(&t) {
            self.bump();
            Ok(())
        } else {
            Err(self.err(format!("expected {t:?}, found {:?}", self.peek())))
        }
    }

    fn eat(&mut self, t: &Token) -> Result<()> {
        if self.at(t) {
            self.bump();
            Ok(())
        } else {
            Err(self.err(format!("expected {t}")))
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.peek().clone() {
            Token::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => Err(self.err(format!("expected identifier, found {other:?}"))),
        }
    }

    // ---- statements ------------------------------------------------

    fn statement(&mut self) -> Result<Statement> {
        match self.peek() {
            Token::Graph => {
                let pat = self.graph_pattern()?;
                self.eat(&Token::Semi)?;
                Ok(Statement::Pattern(pat))
            }
            Token::For => {
                let f = self.flwr()?;
                self.eat(&Token::Semi)?;
                Ok(Statement::Flwr(f))
            }
            Token::Ident(_) if *self.peek2() == Token::ColonAssign => {
                let name = self.ident()?;
                self.eat(&Token::ColonAssign)?;
                let template = self.graph_template()?;
                self.eat(&Token::Semi)?;
                Ok(Statement::Assign { name, template })
            }
            other => Err(self.err(format!(
                "expected `graph`, `for`, or `<id> :=`, found {other:?}"
            ))),
        }
    }

    // ---- patterns --------------------------------------------------

    fn graph_pattern(&mut self) -> Result<GraphPatternAst> {
        self.eat(&Token::Graph)?;
        let name = if let Token::Ident(_) = self.peek() {
            Some(self.ident()?)
        } else {
            None
        };
        let tuple = if self.at(&Token::Lt) {
            Some(self.tuple()?)
        } else {
            None
        };
        self.eat(&Token::LBrace)?;
        let mut members = Vec::new();
        while !self.at(&Token::RBrace) {
            members.push(self.member_decl()?);
        }
        self.eat(&Token::RBrace)?;
        let where_clause = self.opt_where()?;
        Ok(GraphPatternAst {
            name,
            tuple,
            members,
            where_clause,
        })
    }

    fn opt_where(&mut self) -> Result<Option<ExprAst>> {
        if self.at(&Token::Where) {
            self.bump();
            Ok(Some(self.expr()?))
        } else {
            Ok(None)
        }
    }

    fn member_decl(&mut self) -> Result<MemberDecl> {
        match self.peek() {
            Token::Node => {
                self.bump();
                let mut nodes = vec![self.node_decl()?];
                while self.at(&Token::Comma) {
                    self.bump();
                    nodes.push(self.node_decl()?);
                }
                self.eat(&Token::Semi)?;
                Ok(MemberDecl::Nodes(nodes))
            }
            Token::Edge => {
                self.bump();
                let mut edges = vec![self.edge_decl()?];
                while self.at(&Token::Comma) {
                    self.bump();
                    edges.push(self.edge_decl()?);
                }
                self.eat(&Token::Semi)?;
                Ok(MemberDecl::Edges(edges))
            }
            Token::Graph => {
                self.bump();
                let mut graphs = vec![self.graph_ref()?];
                while self.at(&Token::Comma) {
                    self.bump();
                    graphs.push(self.graph_ref()?);
                }
                self.eat(&Token::Semi)?;
                Ok(MemberDecl::Graphs(graphs))
            }
            Token::Unify => {
                self.bump();
                let mut names = vec![self.names()?];
                while self.at(&Token::Comma) {
                    self.bump();
                    names.push(self.names()?);
                }
                if names.len() < 2 {
                    return Err(self.err("unify needs at least two names"));
                }
                let where_clause = self.opt_where()?;
                self.eat(&Token::Semi)?;
                Ok(MemberDecl::Unify {
                    names,
                    where_clause,
                })
            }
            Token::Export => {
                self.bump();
                let name = self.names()?;
                self.eat(&Token::As)?;
                let alias = self.ident()?;
                self.eat(&Token::Semi)?;
                Ok(MemberDecl::Export { name, alias })
            }
            other => Err(self.err(format!(
                "expected `node`, `edge`, `graph`, `unify`, or `export`, found {other:?}"
            ))),
        }
    }

    fn node_decl(&mut self) -> Result<NodeDecl> {
        let name = if let Token::Ident(_) = self.peek() {
            Some(self.ident()?)
        } else {
            None
        };
        let tuple = if self.at(&Token::Lt) {
            Some(self.tuple()?)
        } else {
            None
        };
        let where_clause = self.opt_where()?;
        Ok(NodeDecl {
            name,
            tuple,
            where_clause,
        })
    }

    fn edge_decl(&mut self) -> Result<EdgeDecl> {
        let name = if let Token::Ident(_) = self.peek() {
            Some(self.ident()?)
        } else {
            None
        };
        self.eat(&Token::LParen)?;
        let from = self.names()?;
        self.eat(&Token::Comma)?;
        let to = self.names()?;
        self.eat(&Token::RParen)?;
        let tuple = if self.at(&Token::Lt) {
            Some(self.tuple()?)
        } else {
            None
        };
        let where_clause = self.opt_where()?;
        Ok(EdgeDecl {
            name,
            from,
            to,
            tuple,
            where_clause,
        })
    }

    fn graph_ref(&mut self) -> Result<GraphRef> {
        let name = self.ident()?;
        let alias = if self.at(&Token::As) {
            self.bump();
            Some(self.ident()?)
        } else {
            None
        };
        Ok(GraphRef { name, alias })
    }

    fn names(&mut self) -> Result<Names> {
        let mut parts = vec![self.ident()?];
        while self.at(&Token::Dot) {
            self.bump();
            parts.push(self.ident()?);
        }
        Ok(Names(parts))
    }

    /// `Tuple ::= "<" [ID] (ID "=" Literal)* ">"`. The leading ID is a tag
    /// only if it is not followed by `=`.
    fn tuple(&mut self) -> Result<TupleAst> {
        self.eat(&Token::Lt)?;
        let mut tuple = TupleAst::default();
        if let Token::Ident(_) = self.peek() {
            if *self.peek2() != Token::Assign {
                tuple.tag = Some(self.ident()?);
            }
        }
        while let Token::Ident(_) = self.peek() {
            let key = self.ident()?;
            self.eat(&Token::Assign)?;
            let v = self.literal()?;
            tuple.attrs.push((key, v));
            if self.at(&Token::Comma) {
                self.bump(); // tolerate comma-separated attributes
            }
        }
        self.eat(&Token::Gt)?;
        Ok(tuple)
    }

    fn tuple_template(&mut self) -> Result<TupleTemplateAst> {
        self.eat(&Token::Lt)?;
        let mut tuple = TupleTemplateAst::default();
        if let Token::Ident(_) = self.peek() {
            if *self.peek2() != Token::Assign {
                tuple.tag = Some(self.ident()?);
            }
        }
        while let Token::Ident(_) = self.peek() {
            let key = self.ident()?;
            self.eat(&Token::Assign)?;
            // Inside a tuple template, `>` terminates the tuple, so parse
            // the value at comparison precedence + 1 to keep bare `>` out
            // of the expression. Parenthesized forms remain available.
            let v = self.expr_bp(BinOp::Eq.precedence() + 1)?;
            tuple.attrs.push((key, v));
            if self.at(&Token::Comma) {
                self.bump();
            }
        }
        self.eat(&Token::Gt)?;
        Ok(tuple)
    }

    fn literal(&mut self) -> Result<Value> {
        match self.peek().clone() {
            Token::Int(i) => {
                self.bump();
                Ok(Value::Int(i))
            }
            Token::Float(x) => {
                self.bump();
                Ok(Value::Float(x))
            }
            Token::Str(s) => {
                self.bump();
                Ok(Value::Str(s))
            }
            other => Err(self.err(format!("expected literal, found {other:?}"))),
        }
    }

    // ---- templates -------------------------------------------------

    fn graph_template(&mut self) -> Result<GraphTemplateAst> {
        if let Token::Ident(_) = self.peek() {
            return Ok(GraphTemplateAst::Ref(self.ident()?));
        }
        self.eat(&Token::Graph)?;
        let name = if let Token::Ident(_) = self.peek() {
            Some(self.ident()?)
        } else {
            None
        };
        let tuple = if self.at(&Token::Lt) {
            Some(self.tuple_template()?)
        } else {
            None
        };
        self.eat(&Token::LBrace)?;
        let mut members = Vec::new();
        while !self.at(&Token::RBrace) {
            members.push(self.t_member_decl()?);
        }
        self.eat(&Token::RBrace)?;
        Ok(GraphTemplateAst::Inline {
            name,
            tuple,
            members,
        })
    }

    fn t_member_decl(&mut self) -> Result<TMemberDecl> {
        match self.peek() {
            Token::Node => {
                self.bump();
                let mut nodes = vec![self.t_node_decl()?];
                while self.at(&Token::Comma) {
                    self.bump();
                    nodes.push(self.t_node_decl()?);
                }
                self.eat(&Token::Semi)?;
                Ok(TMemberDecl::Nodes(nodes))
            }
            Token::Edge => {
                self.bump();
                let mut edges = vec![self.t_edge_decl()?];
                while self.at(&Token::Comma) {
                    self.bump();
                    edges.push(self.t_edge_decl()?);
                }
                self.eat(&Token::Semi)?;
                Ok(TMemberDecl::Edges(edges))
            }
            Token::Graph => {
                self.bump();
                let mut graphs = vec![self.graph_ref()?];
                while self.at(&Token::Comma) {
                    self.bump();
                    graphs.push(self.graph_ref()?);
                }
                self.eat(&Token::Semi)?;
                Ok(TMemberDecl::Graphs(graphs))
            }
            Token::Unify => {
                self.bump();
                let mut names = vec![self.names()?];
                while self.at(&Token::Comma) {
                    self.bump();
                    names.push(self.names()?);
                }
                if names.len() < 2 {
                    return Err(self.err("unify needs at least two names"));
                }
                let where_clause = self.opt_where()?;
                self.eat(&Token::Semi)?;
                Ok(TMemberDecl::Unify {
                    names,
                    where_clause,
                })
            }
            other => Err(self.err(format!(
                "expected `node`, `edge`, `graph`, or `unify`, found {other:?}"
            ))),
        }
    }

    fn t_node_decl(&mut self) -> Result<TNodeDecl> {
        let name = if let Token::Ident(_) = self.peek() {
            Some(self.names()?)
        } else {
            None
        };
        let tuple = if self.at(&Token::Lt) {
            Some(self.tuple_template()?)
        } else {
            None
        };
        Ok(TNodeDecl { name, tuple })
    }

    fn t_edge_decl(&mut self) -> Result<TEdgeDecl> {
        let name = if let Token::Ident(_) = self.peek() {
            Some(self.ident()?)
        } else {
            None
        };
        self.eat(&Token::LParen)?;
        let from = self.names()?;
        self.eat(&Token::Comma)?;
        let to = self.names()?;
        self.eat(&Token::RParen)?;
        let tuple = if self.at(&Token::Lt) {
            Some(self.tuple_template()?)
        } else {
            None
        };
        Ok(TEdgeDecl {
            name,
            from,
            to,
            tuple,
        })
    }

    // ---- FLWR ------------------------------------------------------

    fn flwr(&mut self) -> Result<FlwrAst> {
        self.eat(&Token::For)?;
        let pattern = if self.at(&Token::Graph) {
            PatternRef::Inline(self.graph_pattern()?)
        } else {
            PatternRef::Named(self.ident()?)
        };
        let exhaustive = if self.at(&Token::Exhaustive) {
            self.bump();
            true
        } else {
            false
        };
        self.eat(&Token::In)?;
        self.eat(&Token::Doc)?;
        self.eat(&Token::LParen)?;
        let source = match self.peek().clone() {
            Token::Str(s) => {
                self.bump();
                s
            }
            other => return Err(self.err(format!("expected string in doc(), found {other:?}"))),
        };
        self.eat(&Token::RParen)?;
        let where_clause = self.opt_where()?;
        let body = match self.peek() {
            Token::Return => {
                self.bump();
                FlwrBody::Return(self.graph_template()?)
            }
            Token::Let => {
                self.bump();
                let name = self.ident()?;
                if self.at(&Token::Assign) || self.at(&Token::ColonAssign) {
                    self.bump();
                } else {
                    return Err(self.err("expected `=` or `:=` after `let <id>`"));
                }
                FlwrBody::Let {
                    name,
                    template: self.graph_template()?,
                }
            }
            other => return Err(self.err(format!("expected `return` or `let`, found {other:?}"))),
        };
        Ok(FlwrAst {
            pattern,
            exhaustive,
            source,
            where_clause,
            body,
        })
    }

    // ---- expressions -----------------------------------------------

    fn binop_at(&self) -> Option<BinOp> {
        Some(match self.peek() {
            Token::Pipe | Token::Or => BinOp::Or,
            Token::Amp | Token::And => BinOp::And,
            Token::Plus => BinOp::Add,
            Token::Minus => BinOp::Sub,
            Token::Star => BinOp::Mul,
            Token::Slash => BinOp::Div,
            Token::EqEq | Token::Assign => BinOp::Eq,
            Token::NotEq => BinOp::Ne,
            Token::Gt => BinOp::Gt,
            Token::Ge => BinOp::Ge,
            Token::Lt => BinOp::Lt,
            Token::Le => BinOp::Le,
            _ => return None,
        })
    }

    fn expr(&mut self) -> Result<ExprAst> {
        self.expr_bp(0)
    }

    /// Precedence climbing; `min_bp` is the minimum operator precedence
    /// accepted at this level.
    fn expr_bp(&mut self, min_bp: u8) -> Result<ExprAst> {
        let mut lhs = self.term()?;
        while let Some(op) = self.binop_at() {
            let bp = op.precedence();
            if bp < min_bp {
                break;
            }
            self.bump();
            let rhs = self.expr_bp(bp + 1)?; // left-assoc
            lhs = ExprAst::binary(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn term(&mut self) -> Result<ExprAst> {
        match self.peek().clone() {
            Token::LParen => {
                self.bump();
                let e = self.expr()?;
                self.eat(&Token::RParen)?;
                Ok(e)
            }
            Token::Int(_) | Token::Float(_) | Token::Str(_) => {
                Ok(ExprAst::Literal(self.literal()?))
            }
            Token::Ident(_) => Ok(ExprAst::Name(self.names()?)),
            other => Err(self.err(format!("expected expression term, found {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_motif_figure_4_3() {
        let src = r"
            graph G1 {
                node v1, v2, v3;
                edge e1 (v1, v2);
                edge e2 (v2, v3);
                edge e3 (v3, v1);
            };
        ";
        let prog = parse_program(src).unwrap();
        assert_eq!(prog.statements.len(), 1);
        let Statement::Pattern(p) = &prog.statements[0] else {
            panic!("expected pattern");
        };
        assert_eq!(p.name.as_deref(), Some("G1"));
        assert_eq!(p.members.len(), 4);
        let MemberDecl::Nodes(ns) = &p.members[0] else {
            panic!("first member should be nodes");
        };
        assert_eq!(ns.len(), 3);
    }

    #[test]
    fn parses_attributed_graph_figure_4_7() {
        let src = r#"
            graph G <inproceedings> {
                node v1 <title="Title1", year=2006>;
                node v2 <author name="A">;
                node v3 <author name="B">;
            };
        "#;
        let prog = parse_program(src).unwrap();
        let Statement::Pattern(p) = &prog.statements[0] else {
            panic!()
        };
        assert_eq!(
            p.tuple.as_ref().unwrap().tag.as_deref(),
            Some("inproceedings")
        );
        let MemberDecl::Nodes(ns) = &p.members[1] else {
            panic!()
        };
        let t = ns[0].tuple.as_ref().unwrap();
        assert_eq!(t.tag.as_deref(), Some("author"));
        assert_eq!(t.attrs[0], ("name".into(), Value::Str("A".into())));
    }

    #[test]
    fn parses_pattern_with_where_figure_4_8_both_styles() {
        let a =
            parse_pattern(r#"graph P { node v1; node v2; } where v1.name="A" and v2.year>2000"#)
                .unwrap();
        assert!(a.where_clause.is_some());
        let b = parse_pattern(r#"graph P { node v1 where name=="A"; node v2 where year>2000; }"#)
            .unwrap();
        let MemberDecl::Nodes(ns) = &b.members[0] else {
            panic!()
        };
        assert!(ns[0].where_clause.is_some());
    }

    #[test]
    fn parses_concatenation_figure_4_4() {
        let src = r"
            graph G2 {
                graph G1 as X;
                graph G1 as Y;
                edge e4 (X.v1, Y.v1);
                edge e5 (X.v3, Y.v2);
            };
            graph G3 {
                graph G1 as X;
                graph G1 as Y;
                unify X.v1, Y.v1;
                unify X.v3, Y.v2;
            };
        ";
        let prog = parse_program(src).unwrap();
        assert_eq!(prog.statements.len(), 2);
        let Statement::Pattern(g3) = &prog.statements[1] else {
            panic!()
        };
        assert_eq!(g3.members.len(), 4, "two graph refs + two unify members");
        assert!(matches!(&g3.members[2], MemberDecl::Unify { names, .. } if names.len() == 2));
    }

    #[test]
    fn parses_export_figure_4_6() {
        let src = r"
            graph Path {
                graph Path;
                node v1;
                edge e1 (v1, Path.v1);
                export Path.v2 as v2;
            };
        ";
        let prog = parse_program(src).unwrap();
        let Statement::Pattern(p) = &prog.statements[0] else {
            panic!()
        };
        assert!(matches!(
            &p.members[3],
            MemberDecl::Export { name, alias } if name.to_dotted() == "Path.v2" && alias == "v2"
        ));
    }

    #[test]
    fn parses_figure_4_12_coauthorship_query() {
        let src = r#"
            graph P {
                node v1 <author>;
                node v2 <author>;
            } where P.booktitle="SIGMOD";
            C := graph {};
            for P exhaustive in doc("DBLP")
            let C := graph {
                graph C;
                node P.v1, P.v2;
                edge e1 (P.v1, P.v2);
                unify P.v1, C.v1 where P.v1.name=C.v1.name;
                unify P.v2, C.v2 where P.v2.name=C.v2.name;
            };
        "#;
        let prog = parse_program(src).unwrap();
        assert_eq!(prog.statements.len(), 3);
        assert!(matches!(&prog.statements[1], Statement::Assign { name, .. } if name == "C"));
        let Statement::Flwr(f) = &prog.statements[2] else {
            panic!()
        };
        assert!(f.exhaustive);
        assert_eq!(f.source, "DBLP");
        assert!(matches!(&f.pattern, PatternRef::Named(n) if n == "P"));
        let FlwrBody::Let { name, template } = &f.body else {
            panic!()
        };
        assert_eq!(name, "C");
        let GraphTemplateAst::Inline { members, .. } = template else {
            panic!()
        };
        assert_eq!(members.len(), 5);
        assert!(matches!(
            &members[3],
            TMemberDecl::Unify { names, where_clause: Some(_) } if names.len() == 2
        ));
    }

    #[test]
    fn parses_template_figure_4_11() {
        let src = r#"
            T := graph {
                node v1 <label=P.v1.name>;
                node v2 <label=P.v2.title>;
                edge e1 (v1, v2);
            };
        "#;
        let prog = parse_program(src).unwrap();
        let Statement::Assign { template, .. } = &prog.statements[0] else {
            panic!()
        };
        let GraphTemplateAst::Inline { members, .. } = template else {
            panic!()
        };
        let TMemberDecl::Nodes(ns) = &members[0] else {
            panic!()
        };
        let tt = ns[0].tuple.as_ref().unwrap();
        assert!(matches!(&tt.attrs[0].1, ExprAst::Name(n) if n.to_dotted() == "P.v1.name"));
    }

    #[test]
    fn precedence_is_standard() {
        let e = parse_expr("a.x + 2 * 3 == 7 & b.y < 4 | c.z = 1").unwrap();
        // Top level must be `|`.
        let ExprAst::Binary {
            op: BinOp::Or, lhs, ..
        } = e
        else {
            panic!("top should be Or");
        };
        let ExprAst::Binary {
            op: BinOp::And,
            lhs: l2,
            ..
        } = *lhs
        else {
            panic!("next should be And");
        };
        let ExprAst::Binary {
            op: BinOp::Eq,
            lhs: add,
            ..
        } = *l2
        else {
            panic!("then Eq");
        };
        assert!(matches!(*add, ExprAst::Binary { op: BinOp::Add, .. }));
    }

    #[test]
    fn valued_join_figure_4_10() {
        let p = parse_pattern("graph { graph G1, G2; } where G1.id = G2.id").unwrap();
        assert!(matches!(&p.members[0], MemberDecl::Graphs(gs) if gs.len() == 2));
        assert!(p.where_clause.is_some());
    }

    #[test]
    fn flwr_return_variant() {
        let src = r#"
            for graph Q { node a <x=1>; } in doc("db")
            where Q.a.x > 0
            return graph { node n <v=Q.a.x>; };
        "#;
        let prog = parse_program(src).unwrap();
        let Statement::Flwr(f) = &prog.statements[0] else {
            panic!()
        };
        assert!(!f.exhaustive);
        assert!(matches!(&f.pattern, PatternRef::Inline(_)));
        assert!(matches!(&f.body, FlwrBody::Return(_)));
    }

    #[test]
    fn error_messages_carry_position() {
        let err = parse_program("graph G {\n  nodes v1;\n};").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("syntax error"));
        assert!(parse_program("for P in doc(42) return X;").is_err());
        assert!(parse_program("graph G { unify a; };").is_err());
    }

    #[test]
    fn empty_program_and_empty_graph() {
        assert!(parse_program("").unwrap().statements.is_empty());
        let p = parse_pattern("graph {}").unwrap();
        assert!(p.members.is_empty());
        assert!(p.name.is_none());
    }
}
