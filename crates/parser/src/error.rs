//! Parser error type.

use std::fmt;

/// Errors from lexing or parsing GraphQL text.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Human-readable message.
    pub message: String,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column.
    pub col: u32,
    /// Whether the error came from the lexer.
    pub lexical: bool,
}

impl ParseError {
    /// A lexer error at the given position.
    pub fn lex(message: impl Into<String>, line: u32, col: u32) -> Self {
        ParseError {
            message: message.into(),
            line,
            col,
            lexical: true,
        }
    }

    /// A parser error at the given position.
    pub fn syntax(message: impl Into<String>, line: u32, col: u32) -> Self {
        ParseError {
            message: message.into(),
            line,
            col,
            lexical: false,
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = if self.lexical { "lex" } else { "syntax" };
        write!(
            f,
            "{kind} error at {}:{}: {}",
            self.line, self.col, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Result alias for the parser crate.
pub type Result<T> = std::result::Result<T, ParseError>;
