//! Pretty-printing of the AST back to concrete GraphQL syntax.
//!
//! `parse(print(ast)) == ast` — the round-trip property is tested here
//! and in the property suite, and makes programs inspectable/loggable.

use crate::ast::*;
use gql_core::Value;
use std::fmt;

fn write_value(f: &mut fmt::Formatter<'_>, v: &Value) -> fmt::Result {
    match v {
        Value::Str(s) => write!(f, "{s:?}"),
        other => write!(f, "{other}"),
    }
}

impl fmt::Display for ExprAst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExprAst::Literal(v) => write_value(f, v),
            ExprAst::Name(n) => write!(f, "{}", n.to_dotted()),
            ExprAst::Binary { op, lhs, rhs } => {
                // Fully parenthesize: simple and unambiguous.
                write!(f, "({lhs} {op} {rhs})")
            }
        }
    }
}

impl fmt::Display for TupleAst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<")?;
        let mut first = true;
        if let Some(t) = &self.tag {
            write!(f, "{t}")?;
            first = false;
        }
        for (k, v) in &self.attrs {
            if !first {
                write!(f, " ")?;
            }
            write!(f, "{k}=")?;
            write_value(f, v)?;
            first = false;
        }
        write!(f, ">")
    }
}

impl fmt::Display for TupleTemplateAst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<")?;
        let mut first = true;
        if let Some(t) = &self.tag {
            write!(f, "{t}")?;
            first = false;
        }
        for (k, e) in &self.attrs {
            if !first {
                write!(f, " ")?;
            }
            write!(f, "{k}={e}")?;
            first = false;
        }
        write!(f, ">")
    }
}

impl fmt::Display for MemberDecl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemberDecl::Nodes(ns) => {
                write!(f, "node ")?;
                for (i, n) in ns.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    if let Some(name) = &n.name {
                        write!(f, "{name}")?;
                    }
                    if let Some(t) = &n.tuple {
                        write!(f, " {t}")?;
                    }
                    if let Some(w) = &n.where_clause {
                        write!(f, " where {w}")?;
                    }
                }
                write!(f, ";")
            }
            MemberDecl::Edges(es) => {
                write!(f, "edge ")?;
                for (i, e) in es.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    if let Some(name) = &e.name {
                        write!(f, "{name} ")?;
                    }
                    write!(f, "({}, {})", e.from.to_dotted(), e.to.to_dotted())?;
                    if let Some(t) = &e.tuple {
                        write!(f, " {t}")?;
                    }
                    if let Some(w) = &e.where_clause {
                        write!(f, " where {w}")?;
                    }
                }
                write!(f, ";")
            }
            MemberDecl::Graphs(gs) => {
                write!(f, "graph ")?;
                for (i, g) in gs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{}", g.name)?;
                    if let Some(a) = &g.alias {
                        write!(f, " as {a}")?;
                    }
                }
                write!(f, ";")
            }
            MemberDecl::Unify {
                names,
                where_clause,
            } => {
                write!(f, "unify ")?;
                for (i, n) in names.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{}", n.to_dotted())?;
                }
                if let Some(w) = where_clause {
                    write!(f, " where {w}")?;
                }
                write!(f, ";")
            }
            MemberDecl::Export { name, alias } => {
                write!(f, "export {} as {alias};", name.to_dotted())
            }
        }
    }
}

impl fmt::Display for GraphPatternAst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "graph")?;
        if let Some(n) = &self.name {
            write!(f, " {n}")?;
        }
        if let Some(t) = &self.tuple {
            write!(f, " {t}")?;
        }
        writeln!(f, " {{")?;
        for m in &self.members {
            writeln!(f, "    {m}")?;
        }
        write!(f, "}}")?;
        if let Some(w) = &self.where_clause {
            write!(f, " where {w}")?;
        }
        Ok(())
    }
}

impl fmt::Display for TMemberDecl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TMemberDecl::Nodes(ns) => {
                write!(f, "node ")?;
                for (i, n) in ns.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    if let Some(name) = &n.name {
                        write!(f, "{}", name.to_dotted())?;
                    }
                    if let Some(t) = &n.tuple {
                        write!(f, " {t}")?;
                    }
                }
                write!(f, ";")
            }
            TMemberDecl::Edges(es) => {
                write!(f, "edge ")?;
                for (i, e) in es.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    if let Some(name) = &e.name {
                        write!(f, "{name} ")?;
                    }
                    write!(f, "({}, {})", e.from.to_dotted(), e.to.to_dotted())?;
                    if let Some(t) = &e.tuple {
                        write!(f, " {t}")?;
                    }
                }
                write!(f, ";")
            }
            TMemberDecl::Graphs(gs) => {
                write!(f, "graph ")?;
                for (i, g) in gs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{}", g.name)?;
                    if let Some(a) = &g.alias {
                        write!(f, " as {a}")?;
                    }
                }
                write!(f, ";")
            }
            TMemberDecl::Unify {
                names,
                where_clause,
            } => {
                write!(f, "unify ")?;
                for (i, n) in names.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{}", n.to_dotted())?;
                }
                if let Some(w) = where_clause {
                    write!(f, " where {w}")?;
                }
                write!(f, ";")
            }
        }
    }
}

impl fmt::Display for GraphTemplateAst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphTemplateAst::Ref(n) => write!(f, "{n}"),
            GraphTemplateAst::Inline {
                name,
                tuple,
                members,
            } => {
                write!(f, "graph")?;
                if let Some(n) = name {
                    write!(f, " {n}")?;
                }
                if let Some(t) = tuple {
                    write!(f, " {t}")?;
                }
                writeln!(f, " {{")?;
                for m in members {
                    writeln!(f, "    {m}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

impl fmt::Display for FlwrAst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "for ")?;
        match &self.pattern {
            PatternRef::Named(n) => write!(f, "{n}")?,
            PatternRef::Inline(p) => write!(f, "{p}")?,
        }
        if self.exhaustive {
            write!(f, " exhaustive")?;
        }
        write!(f, " in doc({:?})", self.source)?;
        if let Some(w) = &self.where_clause {
            write!(f, " where {w}")?;
        }
        match &self.body {
            FlwrBody::Return(t) => write!(f, " return {t}"),
            FlwrBody::Let { name, template } => write!(f, " let {name} := {template}"),
        }
    }
}

impl fmt::Display for Statement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Statement::Pattern(p) => write!(f, "{p};"),
            Statement::Assign { name, template } => write!(f, "{name} := {template};"),
            Statement::Flwr(x) => write!(f, "{x};"),
        }
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for s in &self.statements {
            writeln!(f, "{s}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::parse_program;

    fn round_trip(src: &str) {
        let p1 = parse_program(src).unwrap();
        let printed = p1.to_string();
        let p2 = parse_program(&printed)
            .unwrap_or_else(|e| panic!("re-parse failed: {e}\n--- printed ---\n{printed}"));
        assert_eq!(p1, p2, "--- printed ---\n{printed}");
    }

    #[test]
    fn round_trips_the_paper_examples() {
        round_trip(
            r#"graph G1 { node v1, v2, v3; edge e1 (v1, v2); edge e2 (v2, v3); edge e3 (v3, v1); };"#,
        );
        round_trip(
            r#"graph G <inproceedings> {
                node v1 <title="Title1" year=2006>;
                node v2 <author name="A">;
            };"#,
        );
        round_trip(r#"graph P { node v1; node v2; } where v1.name="A" & v2.year>2000;"#);
        round_trip(
            r#"graph G3 { graph G1 as X; graph G1 as Y; unify X.v1, Y.v1; unify X.v3, Y.v2; };"#,
        );
        round_trip(
            r#"graph Path { graph Path; node v1; edge e1 (v1, Path.v1); export Path.v2 as v2; };"#,
        );
        round_trip(
            r#"
            graph P { node v1 <author>; node v2 <author>; } where P.booktitle="SIGMOD";
            C := graph {};
            for P exhaustive in doc("DBLP")
            let C := graph {
                graph C;
                node P.v1, P.v2;
                edge e1 (P.v1, P.v2);
                unify P.v1, C.v1 where P.v1.name=C.v1.name;
            };"#,
        );
        round_trip(
            r#"for graph Q { node a <x=1>; } in doc("db") where Q.a.x > 0
               return graph { node n <v=Q.a.x*2+1>; };"#,
        );
    }

    #[test]
    fn expr_display_parenthesizes() {
        let e = crate::parse_expr("a.x + 2 * 3 == 7 & b.y < 4").unwrap();
        assert_eq!(e.to_string(), "(((a.x + (2 * 3)) == 7) & (b.y < 4))");
    }
}
