//! Abstract syntax of the GraphQL query language (Appendix 4.A).
//!
//! Deviations from the printed grammar, all used by the paper's own
//! examples and documented in DESIGN.md:
//!
//! - `ID := GraphTemplate ;` as a top-level statement (Figure 4.12's
//!   `C := graph {};` initializer) and `let ID := template` alongside
//!   `let ID = template`;
//! - `graph G1 as X;` member aliases (Figure 4.4);
//! - `export Names as ID;` members (Figure 4.6);
//! - `=` accepted for `==` and `and`/`or` for `&`/`|` inside `where`
//!   (Figure 4.8 uses both spellings);
//! - standard operator precedence instead of the grammar's flat
//!   right-recursion.

use gql_core::Value;

/// A dotted name path, e.g. `P.v1.name`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Names(pub Vec<String>);

impl Names {
    /// Single-segment name.
    pub fn simple(s: impl Into<String>) -> Self {
        Names(vec![s.into()])
    }

    /// Segments as string slices.
    pub fn segments(&self) -> impl Iterator<Item = &str> {
        self.0.iter().map(|s| s.as_str())
    }

    /// Renders back to dotted form.
    pub fn to_dotted(&self) -> String {
        self.0.join(".")
    }
}

/// Binary operators (surface form).
pub use gql_core::BinOp;

/// An expression in a `where` clause or tuple template.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprAst {
    /// Literal constant.
    Literal(Value),
    /// Dotted name reference (`v1.name`, `P.v1.name`, `P.booktitle`).
    Name(Names),
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<ExprAst>,
        /// Right operand.
        rhs: Box<ExprAst>,
    },
}

impl ExprAst {
    /// Convenience constructor.
    pub fn binary(op: BinOp, lhs: ExprAst, rhs: ExprAst) -> Self {
        ExprAst::Binary {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        }
    }
}

/// `<tag? (name=Literal)*>` — attribute tuple in patterns/data.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TupleAst {
    /// Optional tag.
    pub tag: Option<String>,
    /// Attribute pairs.
    pub attrs: Vec<(String, Value)>,
}

/// `<tag? (name=Expr)*>` — attribute tuple template (values computed
/// from pattern bindings).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TupleTemplateAst {
    /// Optional tag.
    pub tag: Option<String>,
    /// Attribute name → expression.
    pub attrs: Vec<(String, ExprAst)>,
}

/// `node v1 <...> where ...` inside a pattern.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeDecl {
    /// Variable name, if any.
    pub name: Option<String>,
    /// Attribute constraints.
    pub tuple: Option<TupleAst>,
    /// Per-node `where` (attribute names resolve against this node).
    pub where_clause: Option<ExprAst>,
}

/// `edge e1 (v1, v2) <...> where ...` inside a pattern.
#[derive(Debug, Clone, PartialEq)]
pub struct EdgeDecl {
    /// Variable name, if any.
    pub name: Option<String>,
    /// Source endpoint reference.
    pub from: Names,
    /// Target endpoint reference.
    pub to: Names,
    /// Attribute constraints.
    pub tuple: Option<TupleAst>,
    /// Per-edge `where`.
    pub where_clause: Option<ExprAst>,
}

/// `graph G1 as X` member reference.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphRef {
    /// Referenced graph/motif name.
    pub name: String,
    /// Optional alias (`as X`).
    pub alias: Option<String>,
}

/// One member declaration of a graph pattern body.
#[derive(Debug, Clone, PartialEq)]
pub enum MemberDecl {
    /// `node a, b, c;`
    Nodes(Vec<NodeDecl>),
    /// `edge e1 (a, b), e2 (b, c);`
    Edges(Vec<EdgeDecl>),
    /// `graph G1 as X, G2;`
    Graphs(Vec<GraphRef>),
    /// `unify X.v1, Y.v1 [, ...] [where ...];`
    Unify {
        /// Names to unify (≥ 2).
        names: Vec<Names>,
        /// Optional condition (template bodies only in the grammar, but
        /// accepted uniformly).
        where_clause: Option<ExprAst>,
    },
    /// `export Path.v2 as v2;` (formal-language extension, Figure 4.6).
    Export {
        /// Inner name being exported.
        name: Names,
        /// Exported alias.
        alias: String,
    },
}

/// `graph P <tuple>? { members } where ...` — a graph pattern.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphPatternAst {
    /// Pattern name (`P`), if any.
    pub name: Option<String>,
    /// Graph-level attribute constraints.
    pub tuple: Option<TupleAst>,
    /// Body members.
    pub members: Vec<MemberDecl>,
    /// Pattern-wide predicate.
    pub where_clause: Option<ExprAst>,
}

/// A graph template: inline body or a reference to a named
/// pattern/collection variable.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphTemplateAst {
    /// `graph <tuple>? { t-members }`
    Inline {
        /// Template name, if any.
        name: Option<String>,
        /// Graph-level tuple template.
        tuple: Option<TupleTemplateAst>,
        /// Body members.
        members: Vec<TMemberDecl>,
    },
    /// Bare identifier (an existing graph variable).
    Ref(String),
}

/// Template node declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct TNodeDecl {
    /// New node's name, or a dotted reference importing a bound node
    /// (e.g. `node P.v1, P.v2;` in Figure 4.12).
    pub name: Option<Names>,
    /// Tuple template.
    pub tuple: Option<TupleTemplateAst>,
}

/// Template edge declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct TEdgeDecl {
    /// Edge variable name.
    pub name: Option<String>,
    /// Source endpoint (may be dotted, e.g. `P.v1`).
    pub from: Names,
    /// Target endpoint.
    pub to: Names,
    /// Tuple template.
    pub tuple: Option<TupleTemplateAst>,
}

/// One member of a template body.
#[derive(Debug, Clone, PartialEq)]
pub enum TMemberDecl {
    /// `node ...;`
    Nodes(Vec<TNodeDecl>),
    /// `edge ...;`
    Edges(Vec<TEdgeDecl>),
    /// `graph C;` — splice an existing graph variable.
    Graphs(Vec<GraphRef>),
    /// `unify P.v1, C.v1 where P.v1.name = C.v1.name;`
    Unify {
        /// Names to unify.
        names: Vec<Names>,
        /// Optional unification condition.
        where_clause: Option<ExprAst>,
    },
}

/// The pattern operand of a `for`: inline or by name.
#[derive(Debug, Clone, PartialEq)]
pub enum PatternRef {
    /// Previously declared pattern name.
    Named(String),
    /// Inline pattern.
    Inline(GraphPatternAst),
}

/// What the FLWR expression produces.
#[derive(Debug, Clone, PartialEq)]
pub enum FlwrBody {
    /// `return template` — emit one graph per binding.
    Return(GraphTemplateAst),
    /// `let C = template` — accumulate into variable `C`.
    Let {
        /// Target variable.
        name: String,
        /// Template instantiated per binding.
        template: GraphTemplateAst,
    },
}

/// `for P [exhaustive] in doc("D") [where ...] (return|let) ...`
#[derive(Debug, Clone, PartialEq)]
pub struct FlwrAst {
    /// Pattern to match.
    pub pattern: PatternRef,
    /// Enumerate all mappings per graph, or one.
    pub exhaustive: bool,
    /// Source collection name (`doc("DBLP")`).
    pub source: String,
    /// Post-match filter.
    pub where_clause: Option<ExprAst>,
    /// Result clause.
    pub body: FlwrBody,
}

/// A top-level statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// A named graph pattern declaration.
    Pattern(GraphPatternAst),
    /// `C := template;` — bind a variable to an instantiated template.
    Assign {
        /// Variable name.
        name: String,
        /// Template (no pattern parameters in scope).
        template: GraphTemplateAst,
    },
    /// A FLWR expression.
    Flwr(FlwrAst),
}

/// A parsed program: a sequence of statements.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// Statements in source order.
    pub statements: Vec<Statement>,
}
