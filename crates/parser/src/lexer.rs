//! Hand-written lexer for the GraphQL surface syntax.
//!
//! Supports `//` line comments and `/* */` block comments as a practical
//! extension (the paper's listings carry no comments).

use crate::error::{ParseError, Result};
use crate::token::{Spanned, Token};

/// Lexes `src` into a token stream terminated by [`Token::Eof`].
pub fn lex(src: &str) -> Result<Vec<Spanned>> {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    line: u32,
    col: u32,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            chars: src.chars().peekable(),
            line: 1,
            col: 1,
        }
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.next()?;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn peek(&mut self) -> Option<char> {
        self.chars.peek().copied()
    }

    fn error(&self, msg: impl Into<String>) -> ParseError {
        ParseError::lex(msg, self.line, self.col)
    }

    fn run(mut self) -> Result<Vec<Spanned>> {
        let mut out = Vec::new();
        loop {
            // Skip whitespace and comments.
            loop {
                match self.peek() {
                    Some(c) if c.is_whitespace() => {
                        self.bump();
                    }
                    Some('/') => {
                        // Maybe a comment; look ahead without consuming a
                        // division operator.
                        let mut clone = self.chars.clone();
                        clone.next();
                        match clone.peek() {
                            Some('/') => {
                                while let Some(c) = self.bump() {
                                    if c == '\n' {
                                        break;
                                    }
                                }
                            }
                            Some('*') => {
                                self.bump();
                                self.bump();
                                let mut prev = '\0';
                                loop {
                                    match self.bump() {
                                        None => {
                                            return Err(self.error("unterminated block comment"))
                                        }
                                        Some('/') if prev == '*' => break,
                                        Some(c) => prev = c,
                                    }
                                }
                            }
                            _ => break,
                        }
                    }
                    _ => break,
                }
            }

            let (line, col) = (self.line, self.col);
            let Some(c) = self.peek() else {
                out.push(Spanned {
                    token: Token::Eof,
                    line,
                    col,
                });
                return Ok(out);
            };

            let token = match c {
                'a'..='z' | 'A'..='Z' | '_' => self.ident(),
                '0'..='9' => self.number(false)?,
                '"' | '\u{201c}' | '\u{201d}' => self.string()?,
                _ => {
                    self.bump();
                    match c {
                        '(' => Token::LParen,
                        ')' => Token::RParen,
                        '{' => Token::LBrace,
                        '}' => Token::RBrace,
                        ',' => Token::Comma,
                        ';' => Token::Semi,
                        '.' => Token::Dot,
                        '|' => Token::Pipe,
                        '&' => Token::Amp,
                        '+' => Token::Plus,
                        '*' => Token::Star,
                        '/' => Token::Slash,
                        '-' => {
                            // Negative numeric literal or minus operator:
                            // the grammar has no unary minus, so fold the
                            // sign into a following digit — but only when
                            // the previous token cannot end an operand,
                            // otherwise `x-7` would lex as `x`, `-7` and
                            // break subtraction.
                            let after_operand = matches!(
                                out.last().map(|s: &Spanned| &s.token),
                                Some(
                                    Token::Ident(_)
                                        | Token::Int(_)
                                        | Token::Float(_)
                                        | Token::Str(_)
                                        | Token::RParen
                                )
                            );
                            if !after_operand && self.peek().is_some_and(|d| d.is_ascii_digit()) {
                                self.number(true)?
                            } else {
                                Token::Minus
                            }
                        }
                        ':' => {
                            if self.peek() == Some('=') {
                                self.bump();
                                Token::ColonAssign
                            } else {
                                return Err(self.error("expected '=' after ':'"));
                            }
                        }
                        '=' => {
                            if self.peek() == Some('=') {
                                self.bump();
                                Token::EqEq
                            } else {
                                Token::Assign
                            }
                        }
                        '!' => {
                            if self.peek() == Some('=') {
                                self.bump();
                                Token::NotEq
                            } else {
                                return Err(self.error("expected '=' after '!'"));
                            }
                        }
                        '<' => {
                            if self.peek() == Some('=') {
                                self.bump();
                                Token::Le
                            } else {
                                Token::Lt
                            }
                        }
                        '>' => {
                            if self.peek() == Some('=') {
                                self.bump();
                                Token::Ge
                            } else {
                                Token::Gt
                            }
                        }
                        other => return Err(self.error(format!("unexpected character {other:?}"))),
                    }
                }
            };
            out.push(Spanned { token, line, col });
        }
    }

    fn ident(&mut self) -> Token {
        let mut s = String::new();
        while let Some(c) = self.peek() {
            if c.is_alphanumeric() || c == '_' {
                s.push(c);
                self.bump();
            } else {
                break;
            }
        }
        Token::keyword(&s).unwrap_or(Token::Ident(s))
    }

    fn number(&mut self, negative: bool) -> Result<Token> {
        let mut s = String::new();
        if negative {
            s.push('-');
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() {
                s.push(c);
                self.bump();
            } else if c == '.' && !is_float {
                // A digit must follow, else this dot is member access
                // (e.g. `2.x` never occurs, but `P.v1` after ints can't).
                let mut clone = self.chars.clone();
                clone.next();
                if clone.peek().is_some_and(|d| d.is_ascii_digit()) {
                    is_float = true;
                    s.push(c);
                    self.bump();
                } else {
                    break;
                }
            } else if c == 'e' || c == 'E' {
                // Exponent part.
                let mut clone = self.chars.clone();
                clone.next();
                let next = clone.peek().copied();
                if next.is_some_and(|d| d.is_ascii_digit() || d == '+' || d == '-') {
                    is_float = true;
                    s.push(c);
                    self.bump();
                    if self.peek().is_some_and(|d| d == '+' || d == '-') {
                        s.push(self.bump().expect("peeked"));
                    }
                } else {
                    break;
                }
            } else {
                break;
            }
        }
        if is_float {
            s.parse::<f64>()
                .map(Token::Float)
                .map_err(|e| self.error(format!("invalid float literal {s:?}: {e}")))
        } else {
            s.parse::<i64>()
                .map(Token::Int)
                .map_err(|e| self.error(format!("invalid int literal {s:?}: {e}")))
        }
    }

    fn string(&mut self) -> Result<Token> {
        let open = self.bump().expect("peeked"); // opening quote
        let closing = match open {
            '\u{201c}' => '\u{201d}', // tolerate curly quotes from the paper's PDF
            _ => '"',
        };
        let mut s = String::new();
        loop {
            match self.bump() {
                None => return Err(self.error("unterminated string literal")),
                Some('\\') => match self.bump() {
                    Some('n') => s.push('\n'),
                    Some('t') => s.push('\t'),
                    Some('\\') => s.push('\\'),
                    Some('"') => s.push('"'),
                    Some(other) => {
                        return Err(self.error(format!("unknown escape \\{other}")));
                    }
                    None => return Err(self.error("unterminated string literal")),
                },
                Some(c) if c == closing || (closing == '"' && c == '"') => break,
                Some(c) => s.push(c),
            }
        }
        Ok(Token::Str(s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Token> {
        lex(src).unwrap().into_iter().map(|s| s.token).collect()
    }

    #[test]
    fn keywords_and_idents() {
        assert_eq!(
            toks("graph G1 where exhaustive v1"),
            vec![
                Token::Graph,
                Token::Ident("G1".into()),
                Token::Where,
                Token::Exhaustive,
                Token::Ident("v1".into()),
                Token::Eof
            ]
        );
    }

    #[test]
    fn operators() {
        assert_eq!(
            toks("= == != < <= > >= | & + - * / :="),
            vec![
                Token::Assign,
                Token::EqEq,
                Token::NotEq,
                Token::Lt,
                Token::Le,
                Token::Gt,
                Token::Ge,
                Token::Pipe,
                Token::Amp,
                Token::Plus,
                Token::Minus,
                Token::Star,
                Token::Slash,
                Token::ColonAssign,
                Token::Eof
            ]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(
            toks("42, -7, 3.5 1e3 2E-2"),
            vec![
                Token::Int(42),
                Token::Comma,
                Token::Int(-7),
                Token::Comma,
                Token::Float(3.5),
                Token::Float(1000.0),
                Token::Float(0.02),
                Token::Eof
            ]
        );
    }

    #[test]
    fn dotted_names_are_not_floats() {
        assert_eq!(
            toks("P.v1.name"),
            vec![
                Token::Ident("P".into()),
                Token::Dot,
                Token::Ident("v1".into()),
                Token::Dot,
                Token::Ident("name".into()),
                Token::Eof
            ]
        );
    }

    #[test]
    fn strings_and_escapes() {
        assert_eq!(
            toks(r#""SIGMOD" "a\"b\n""#),
            vec![
                Token::Str("SIGMOD".into()),
                Token::Str("a\"b\n".into()),
                Token::Eof
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            toks("graph // c\n /* multi\nline */ node"),
            vec![Token::Graph, Token::Node, Token::Eof]
        );
        assert_eq!(
            toks("1 / 2"),
            vec![Token::Int(1), Token::Slash, Token::Int(2), Token::Eof]
        );
    }

    #[test]
    fn tuple_sample_from_figure_4_7() {
        let ts = toks(r#"<author name="A">"#);
        assert_eq!(
            ts,
            vec![
                Token::Lt,
                Token::Ident("author".into()),
                Token::Ident("name".into()),
                Token::Assign,
                Token::Str("A".into()),
                Token::Gt,
                Token::Eof
            ]
        );
    }

    #[test]
    fn errors_carry_location() {
        let err = lex("graph\n  #").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("2:"), "{msg}");
    }

    #[test]
    fn unterminated_string_and_comment() {
        assert!(lex("\"abc").is_err());
        assert!(lex("/* abc").is_err());
        assert!(lex("!x").is_err());
        assert!(lex(": x").is_err());
    }
}

#[cfg(test)]
mod subtraction_tests {
    use super::*;
    use crate::token::Token;

    #[test]
    fn minus_after_operand_is_subtraction() {
        let toks: Vec<Token> = lex("x-7").unwrap().into_iter().map(|s| s.token).collect();
        assert_eq!(
            toks,
            vec![
                Token::Ident("x".into()),
                Token::Minus,
                Token::Int(7),
                Token::Eof
            ]
        );
        let toks2: Vec<Token> = lex("(1)-2").unwrap().into_iter().map(|s| s.token).collect();
        assert_eq!(toks2[2], Token::RParen);
        assert_eq!(toks2[3], Token::Minus);
        // Leading minus still makes a negative literal.
        let toks3: Vec<Token> = lex("= -7").unwrap().into_iter().map(|s| s.token).collect();
        assert_eq!(toks3[1], Token::Int(-7));
    }

    #[test]
    fn subtraction_parses_in_expressions() {
        let e = crate::parse_expr("v1.x-7 > 0").unwrap();
        assert_eq!(e.to_string(), "((v1.x - 7) > 0)");
    }
}
