//! # gql-parser — surface syntax of the GraphQL query language
//!
//! Lexer, recursive-descent parser, and AST for the concrete syntax of
//! *"Graphs-at-a-time"* (He & Singh, SIGMOD 2008), Appendix 4.A: graph
//! patterns, attribute tuples, `where` predicates, graph templates, and
//! FLWR (`for`/`let`/`where`/`return`) expressions.
//!
//! ```
//! use gql_parser::{parse_pattern, ast::MemberDecl};
//!
//! let p = parse_pattern(r#"
//!     graph P {
//!         node v1 <author>;
//!         node v2 <author>;
//!     } where P.booktitle = "SIGMOD"
//! "#).unwrap();
//! assert_eq!(p.name.as_deref(), Some("P"));
//! assert!(matches!(p.members[0], MemberDecl::Nodes(_)));
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod display;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod token;

pub use ast::Program;
pub use error::{ParseError, Result};
pub use parser::{parse_expr, parse_pattern, parse_program};
