//! Motif search over the synthetic protein-interaction network,
//! comparing the paper's access-method configurations (§4) and printing
//! the pruning statistics the §5 experiments are built on.
//!
//! ```text
//! cargo run -p graphql-examples --release --bin protein_motifs
//! ```

use gql_datagen::{clique_queries, ppi_network, PpiConfig};
use gql_match::{match_pattern, GraphIndex, LocalPruning, MatchOptions, Pattern, RefineLevel};

fn main() {
    println!("Generating the synthetic yeast PPI network (3112 proteins, 12519 interactions)...");
    let graph = ppi_network(&PpiConfig::default());
    println!("Building the index (labels + radius-1 profiles + neighborhood subgraphs)...");
    let index = GraphIndex::build_full(&graph, 1);

    let configs: Vec<(&str, MatchOptions)> = vec![
        ("baseline (node attrs)", MatchOptions::baseline()),
        (
            "profiles r=1",
            MatchOptions {
                pruning: LocalPruning::Profiles { radius: 1 },
                refine: RefineLevel::Off,
                optimize_order: false,
                ..MatchOptions::default()
            },
        ),
        (
            "subgraphs r=1",
            MatchOptions {
                pruning: LocalPruning::Subgraphs { radius: 1 },
                refine: RefineLevel::Off,
                optimize_order: false,
                ..MatchOptions::default()
            },
        ),
        (
            "optimized (profiles+refine+order)",
            MatchOptions::optimized(),
        ),
    ];

    for size in [3usize, 4, 5] {
        // Take the first generated clique query of this size that has
        // at least one answer.
        let queries = clique_queries(&graph, size, 400, 7 + size as u64);
        let mut shown = false;
        for q in &queries {
            let pattern = Pattern::structural(q.clone());
            let probe = match_pattern(&pattern, &graph, &index, &MatchOptions::optimized());
            if probe.mappings.is_empty() {
                continue;
            }
            let labels: Vec<String> = q
                .node_ids()
                .map(|v| q.node_label(v).unwrap().as_str().unwrap().to_string())
                .collect();
            println!(
                "\n=== clique of size {size} over labels {{{}}} — {} answer(s) ===",
                labels.join(", "),
                probe.mappings.len()
            );
            println!(
                "{:<36} {:>10} {:>14} {:>12} {:>10}",
                "configuration", "answers", "space(log10)", "steps", "time"
            );
            for (name, opts) in &configs {
                let mut opts = opts.clone();
                opts.max_matches = 1001;
                let rep = match_pattern(&pattern, &graph, &index, &opts);
                let space = if opts.refine == RefineLevel::Off {
                    rep.spaces.local_ratio_log10()
                } else {
                    rep.spaces.refined_ratio_log10()
                };
                println!(
                    "{:<36} {:>10} {:>14.2} {:>12} {:>9.1?}",
                    name,
                    rep.mappings.len(),
                    space,
                    rep.search_steps,
                    rep.timings.total()
                );
            }
            shown = true;
            break;
        }
        if !shown {
            println!("\n(no answered clique query of size {size} in this sample)");
        }
    }
}
