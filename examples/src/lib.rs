//! Shared helpers for the runnable examples. The binaries themselves
//! live at the crate root (`quickstart.rs`, `coauthorship.rs`,
//! `protein_motifs.rs`, `chemistry.rs`, `rdf_shipping.rs`).
