//! The paper's running example (Figure 4.12): build a co-authorship
//! graph from a DBLP-like collection with a FLWR query whose `let`
//! clause accumulates via conditional `unify`.
//!
//! ```text
//! cargo run -p graphql-examples --bin coauthorship
//! ```

use gql_datagen::{dblp_collection, DblpConfig};
use gql_engine::Database;

fn main() {
    let cfg = DblpConfig {
        papers: 60,
        authors: 15,
        ..DblpConfig::default()
    };
    let collection = dblp_collection(&cfg);
    println!(
        "DBLP collection: {} papers, {} author nodes",
        collection.len(),
        collection.total_nodes() - collection.len() // minus title nodes
    );

    let mut db = Database::new();
    db.add_collection("DBLP", collection);

    // Figure 4.12, verbatim (modulo the venue filter being SIGMOD).
    db.execute(
        r#"
        graph P {
            node v1 <author>;
            node v2 <author>;
        } where P.booktitle="SIGMOD";

        C := graph {};

        for P exhaustive in doc("DBLP")
        let C := graph {
            graph C;
            node P.v1, P.v2;
            edge e1 (P.v1, P.v2);
            unify P.v1, C.v1 where P.v1.name=C.v1.name;
            unify P.v2, C.v2 where P.v2.name=C.v2.name;
        };
    "#,
    )
    .expect("the Figure 4.12 query runs");

    let c = db.var("C").expect("accumulator C is defined");
    println!(
        "\nCo-authorship graph over SIGMOD papers: {} authors, {} co-author edges",
        c.node_count(),
        c.edge_count()
    );
    // Print the adjacency as name lists.
    let mut rows: Vec<(String, Vec<String>)> = c
        .node_ids()
        .map(|v| {
            let name = c
                .node(v)
                .attrs
                .get("name")
                .and_then(|x| x.as_str())
                .unwrap_or("?")
                .to_string();
            let mut nbrs: Vec<String> = c
                .neighbors(v)
                .iter()
                .map(|&(w, _)| {
                    c.node(w)
                        .attrs
                        .get("name")
                        .and_then(|x| x.as_str())
                        .unwrap_or("?")
                        .to_string()
                })
                .collect();
            nbrs.sort();
            (name, nbrs)
        })
        .collect();
    rows.sort();
    for (name, nbrs) in rows {
        println!("  {name}: {}", nbrs.join(", "));
    }
}
