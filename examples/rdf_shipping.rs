//! The §1.1 RDF example: "find all instances where two departments of a
//! company share the same shipping company... Report the result as a
//! single graph with departments as nodes and edges between nodes that
//! share a shipper" — selection + composition producing *new* graphs.
//!
//! ```text
//! cargo run -p graphql-examples --bin rdf_shipping
//! ```

use gql_algebra::{compile_pattern_text, instantiate, ops, TemplateEnv};
use gql_core::{GraphCollection, Tuple, Value};
use gql_datagen::{company_graph, RdfConfig};
use gql_match::MatchOptions;
use gql_parser::ast::Statement;

fn main() {
    let data = company_graph(&RdfConfig::default());
    println!(
        "Company RDF graph: {} nodes, {} shipping edges (directed)",
        data.node_count(),
        data.edge_count()
    );

    // The query graph "of three nodes and two edges ... nodes share the
    // same company attribute and the edges are labeled by a shipping
    // attribute".
    let pattern = compile_pattern_text(
        r#"
        graph P {
            node d1 <dept>;
            node d2 <dept>;
            node s <shipper>;
            edge e1 (d1, s) <label="shipping">;
            edge e2 (d2, s) <label="shipping">;
        } where d1.company = d2.company
    "#,
    )
    .expect("pattern compiles");

    let collection = GraphCollection::from_graph(data);
    let matches =
        ops::select(&pattern, &collection, &MatchOptions::optimized()).expect("selection runs");
    println!("Department pairs sharing a shipper: {}", matches.len() / 2);

    // Compose the result into a single graph: departments as nodes,
    // an edge between departments that share a shipper. We accumulate
    // with the same conditional-unify idiom as Figure 4.12.
    let prog = gql_parser::parse_program(
        r#"
        T := graph {
            graph Acc;
            node P.d1, P.d2;
            edge e (P.d1, P.d2);
            unify P.d1, Acc.x where P.d1.name = Acc.x.name;
            unify P.d2, Acc.x where P.d2.name = Acc.x.name;
        };
    "#,
    )
    .expect("template parses");
    let Statement::Assign { template, .. } = &prog.statements[0] else {
        unreachable!()
    };

    let mut acc = gql_core::Graph::named("shared-shippers");
    for m in &matches {
        let env = TemplateEnv::new().with_param("P", m).with_var("Acc", &acc);
        acc = instantiate(template, &env).expect("template instantiates");
    }
    println!(
        "\nResult graph: {} departments, {} share-a-shipper edges",
        acc.node_count(),
        acc.edge_count()
    );
    for (_, e) in acc.edges() {
        let name = |t: &Tuple| {
            t.get("name")
                .and_then(Value::as_str)
                .unwrap_or("?")
                .to_string()
        };
        println!(
            "  {} -- {}",
            name(&acc.node(e.src).attrs),
            name(&acc.node(e.dst).attrs)
        );
    }
}
