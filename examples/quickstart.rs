//! Quickstart: build a graph, write a GraphQL pattern, match it.
//!
//! ```text
//! cargo run -p graphql-examples --bin quickstart
//! ```

use gql_algebra::{compile_pattern_text, ops};
use gql_core::fixtures::figure_4_16_graph;
use gql_core::GraphCollection;
use gql_engine::Database;
use gql_match::MatchOptions;

fn main() {
    // 1. The sample graph of the paper's Figure 4.1/4.16: six labeled
    //    proteins A1, A2, B1, B2, C1, C2 and six interactions.
    let (graph, _) = figure_4_16_graph();
    println!("Data graph:\n{graph}\n");

    // 2. A graph pattern in GraphQL's concrete syntax: the A–B–C
    //    triangle.
    let pattern = compile_pattern_text(
        r#"
        graph P {
            node v1 <label="A">;
            node v2 <label="B">;
            node v3 <label="C">;
            edge e1 (v1, v2);
            edge e2 (v2, v3);
            edge e3 (v3, v1);
        }
    "#,
    )
    .expect("pattern parses and compiles");

    // 3. Selection: match the pattern against the (1-graph) collection.
    let collection = GraphCollection::from_graph(graph);
    let matches =
        ops::select(&pattern, &collection, &MatchOptions::optimized()).expect("selection succeeds");
    println!("The triangle matches {} time(s):", matches.len());
    for m in &matches {
        println!(
            "  v1 -> {}, v2 -> {}, v3 -> {}",
            m.graph.node(m.node("v1").unwrap()).name.as_deref().unwrap(),
            m.graph.node(m.node("v2").unwrap()).name.as_deref().unwrap(),
            m.graph.node(m.node("v3").unwrap()).name.as_deref().unwrap(),
        );
    }

    // 4. The same through the full engine, composing a result graph per
    //    match with a template.
    let mut db = Database::new();
    let (graph, _) = figure_4_16_graph();
    db.add_graph("G", graph);
    let out = db
        .execute(
            r#"
            for graph Q {
                node a <label="A">;
                node b <label="B">;
                edge e (a, b);
            } exhaustive in doc("G")
            return graph { node n <pair=Q.a.label>; };
        "#,
        )
        .expect("query runs");
    println!(
        "\nFLWR query returned {} graph(s) (one per A–B edge).",
        out.returned[0].len()
    );
}
