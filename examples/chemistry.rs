//! The §1.1 cheminformatics example: "find all heterocyclic chemical
//! compounds that contain a given aromatic ring and a side chain" over
//! a collection of small molecule graphs — the paper's *collection of
//! small graphs* database category.
//!
//! ```text
//! cargo run -p graphql-examples --bin chemistry
//! ```

use gql_algebra::{compile_pattern_text, ops};
use gql_datagen::{molecule_collection, MoleculeConfig};
use gql_match::MatchOptions;

fn main() {
    let collection = molecule_collection(&MoleculeConfig {
        count: 200,
        heterocyclic_fraction: 0.25,
        seed: 0xc0ffee,
    });
    println!(
        "Compound library: {} molecules ({} atoms, {} bonds)",
        collection.len(),
        collection.total_nodes(),
        collection.total_edges()
    );

    // A pyridine-like hetero-aromatic ring: a 6-cycle with one nitrogen,
    // aromatic bonds.
    let ring = compile_pattern_text(
        r#"
        graph Ring {
            node a1 <label="N">;
            node a2 <label="C">; node a3 <label="C">;
            node a4 <label="C">; node a5 <label="C">;
            node a6 <label="C">;
            edge b1 (a1, a2) <kind="aromatic">;
            edge b2 (a2, a3) <kind="aromatic">;
            edge b3 (a3, a4) <kind="aromatic">;
            edge b4 (a4, a5) <kind="aromatic">;
            edge b5 (a5, a6) <kind="aromatic">;
            edge b6 (a6, a1) <kind="aromatic">;
        }
    "#,
    )
    .expect("ring pattern compiles");

    let mut opts = MatchOptions::optimized();
    opts.exhaustive = false; // containment check: one embedding suffices
    let hits = ops::select(&ring, &collection, &opts).expect("selection runs");
    println!(
        "Molecules containing the hetero-aromatic ring: {}",
        hits.len()
    );

    // Refine: ring plus an oxygen side-chain atom attached to the ring.
    let ring_with_oxygen = compile_pattern_text(
        r#"
        graph RingO {
            node a1 <label="N">;
            node a2 <label="C">; node a3 <label="C">;
            node a4 <label="C">; node a5 <label="C">;
            node a6 <label="C">;
            node s1 <label="O">;
            edge b1 (a1, a2) <kind="aromatic">;
            edge b2 (a2, a3) <kind="aromatic">;
            edge b3 (a3, a4) <kind="aromatic">;
            edge b4 (a4, a5) <kind="aromatic">;
            edge b5 (a5, a6) <kind="aromatic">;
            edge b6 (a6, a1) <kind="aromatic">;
            edge c1 (a2, s1) <kind="single">;
        }
    "#,
    )
    .expect("pattern compiles");
    let hits_o = ops::select(&ring_with_oxygen, &collection, &opts).expect("selection runs");
    println!(
        "...of which also carry an O side-chain on the ring: {}",
        hits_o.len()
    );

    for m in hits_o.iter().take(5) {
        println!(
            "  e.g. {} ({} atoms)",
            m.graph.name.as_deref().unwrap_or("?"),
            m.graph.node_count()
        );
    }
}
