#!/usr/bin/env bash
# Repo verification gate: formatting, lints, release build, full test
# suite. CI runs exactly this script; run it locally before pushing.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test -q --workspace

echo "==> interned-kernel equivalence suite"
cargo test -q -p gql-match --test interned_equivalence

echo "==> CSR-snapshot equivalence suite"
cargo test -q -p gql-match --test csr_equivalence

echo "==> plan-cache equivalence suite"
cargo test -q -p gql-match --test plan_cache_equivalence

echo "==> property-index equivalence suite"
cargo test -q -p gql-match --test propindex_equivalence

echo "==> storage unit suite (WAL, segments, checkpoint protocol, bulk loader)"
cargo test -q -p gql-storage

echo "==> crash-recovery fault-injection suite"
cargo test -q -p gql-engine --test recovery

echo "==> mmap equivalence suite (mapped vs owned opens, bit flips, compaction)"
cargo test -q -p gql-engine --test mmap_equivalence

echo "==> plan-cache smoke (match with and without --no-plan-cache must agree)"
with_cache=$(cargo run --release -q -p gql-cli -- match \
    --graph examples/gql/triangle_net.gql --pattern examples/gql/triangle.gql \
    | grep -v '^time:')
without_cache=$(cargo run --release -q -p gql-cli -- match \
    --graph examples/gql/triangle_net.gql --pattern examples/gql/triangle.gql \
    --no-plan-cache | grep -v '^time:')
adaptive=$(cargo run --release -q -p gql-cli -- match \
    --graph examples/gql/triangle_net.gql --pattern examples/gql/triangle.gql \
    --adaptive on | grep -v '^time:')
[ "$with_cache" = "$without_cache" ] || { echo "plan cache changed match output"; exit 1; }
[ "$with_cache" = "$adaptive" ] || { echo "--adaptive on changed match output"; exit 1; }

echo "==> CSR smoke (match with and without --no-csr must agree)"
# Wall-clock lines differ run to run; compare everything else.
with_csr=$(cargo run --release -q -p gql-cli -- match \
    --graph examples/gql/triangle_net.gql --pattern examples/gql/triangle.gql \
    | grep -v '^time:')
without_csr=$(cargo run --release -q -p gql-cli -- match \
    --graph examples/gql/triangle_net.gql --pattern examples/gql/triangle.gql --no-csr \
    | grep -v '^time:')
[ "$with_csr" = "$without_csr" ] || { echo "CSR and --no-csr outputs differ"; exit 1; }
echo "$with_csr" | grep -q "matches: 2" || { echo "unexpected match count"; exit 1; }

echo "==> property-index smoke (match with and without --no-prop-index must agree)"
with_prop=$(cargo run --release -q -p gql-cli -- match \
    --graph examples/gql/triangle_net.gql --pattern examples/gql/triangle.gql \
    | grep -v '^time:')
without_prop=$(cargo run --release -q -p gql-cli -- match \
    --graph examples/gql/triangle_net.gql --pattern examples/gql/triangle.gql \
    --no-prop-index | grep -v '^time:')
[ "$with_prop" = "$without_prop" ] || { echo "--no-prop-index changed match output"; exit 1; }

echo "==> profile smoke (gql run --profile on the bundled example)"
# The profile report goes to stderr; results stay alone on stdout.
# Capture before grepping: `cargo run | grep -q` races grep's early
# exit against the writer (SIGPIPE + pipefail = flaky failure).
profile_out=$(cargo run --release -q -p gql-cli -- run examples/gql/coauthors.gql \
    --data DBLP=examples/gql/dblp_sample.gql --profile 2>&1)
grep -q "match.search" <<<"$profile_out" \
    || { echo "profile output missing phases"; exit 1; }
grep -q "planner.cache" <<<"$profile_out" \
    || { echo "profile output missing planner counters"; exit 1; }

echo "==> explain + trace smoke (gql run on the bundled example)"
obs_tmp=$(mktemp -d)
cargo run --release -q -p gql-cli -- run examples/gql/coauthors.gql \
    --data DBLP=examples/gql/dblp_sample.gql \
    --explain --slow-ms 0 \
    --trace "$obs_tmp/trace.json" --metrics "$obs_tmp/metrics.prom" \
    > "$obs_tmp/results.txt" 2> "$obs_tmp/diag.txt"
grep -q "flwr" "$obs_tmp/diag.txt" || { echo "explain tree missing"; exit 1; }
grep -q -- "-- slow queries" "$obs_tmp/diag.txt" || { echo "slow-query log missing"; exit 1; }
grep -q "traceEvents" "$obs_tmp/trace.json" || { echo "trace file missing events"; exit 1; }
python3 -m json.tool "$obs_tmp/trace.json" > /dev/null \
    || { echo "trace file is not valid JSON"; exit 1; }
grep -q 'gql_engine_flwr_seconds_count' "$obs_tmp/metrics.prom" \
    || { echo "metrics file missing engine.flwr"; exit 1; }
cargo run --release -q -p gql-bench --bin experiments -- validate-prom "$obs_tmp/metrics.prom" \
    || { echo "metrics file is not valid Prometheus exposition"; exit 1; }
grep -q -- "-- result" "$obs_tmp/results.txt" || { echo "results missing from stdout"; exit 1; }
if grep -qE "loaded|profile|flwr|ok" "$obs_tmp/results.txt"; then
    echo "diagnostics leaked to stdout"; exit 1
fi
rm -rf "$obs_tmp"

echo "==> persistence smoke (checkpoint, then reopen without data files)"
persist_tmp=$(mktemp -d)
first=$(cargo run --release -q -p gql-cli -- run examples/gql/coauthors.gql \
    --data DBLP=examples/gql/dblp_sample.gql \
    --data-dir "$persist_tmp/db" --checkpoint 2> "$persist_tmp/diag1.txt")
grep -q "checkpoint written" "$persist_tmp/diag1.txt" \
    || { echo "checkpoint notice missing"; exit 1; }
[ -f "$persist_tmp/db/MANIFEST" ] || { echo "MANIFEST not written"; exit 1; }
second=$(cargo run --release -q -p gql-cli -- run examples/gql/coauthors.gql \
    --data-dir "$persist_tmp/db" 2> "$persist_tmp/diag2.txt")
grep -q "opened" "$persist_tmp/diag2.txt" || { echo "reopen notice missing"; exit 1; }
[ "$first" = "$second" ] || { echo "checkpoint-reopen changed results"; exit 1; }
grep -q "opened .* (mapped)" "$persist_tmp/diag2.txt" \
    || { echo "default reopen did not map the checkpoint"; exit 1; }
third=$(cargo run --release -q -p gql-cli -- run examples/gql/coauthors.gql \
    --data-dir "$persist_tmp/db" --no-mmap 2> "$persist_tmp/diag3.txt")
grep -q "opened .* (owned)" "$persist_tmp/diag3.txt" \
    || { echo "--no-mmap reopen still mapped"; exit 1; }
[ "$first" = "$third" ] || { echo "--no-mmap changed results"; exit 1; }
fourth=$(cargo run --release -q -p gql-cli -- run examples/gql/coauthors.gql \
    --data-dir "$persist_tmp/db" --verify-checkpoint 2> /dev/null)
[ "$first" = "$fourth" ] || { echo "--verify-checkpoint changed results"; exit 1; }
rm -rf "$persist_tmp"

echo "==> live telemetry smoke (--metrics-addr endpoints answer mid-run)"
tele_tmp=$(mktemp -d)
cargo run --release -q -p gql-cli -- run examples/gql/coauthors.gql \
    --data DBLP=examples/gql/dblp_sample.gql \
    --metrics-addr 127.0.0.1:0 --metrics-linger-ms 8000 --slow-ms 0 \
    > "$tele_tmp/results.txt" 2> "$tele_tmp/diag.txt" &
tele_pid=$!
# The bound (ephemeral) address is printed to stderr as soon as the
# server is up — before the program's own work starts.
tele_addr=""
for _ in $(seq 1 100); do
    tele_addr=$(sed -n 's#^metrics server listening on http://\([^/]*\)/metrics$#\1#p' \
        "$tele_tmp/diag.txt" | head -n1)
    [ -n "$tele_addr" ] && break
    sleep 0.1
done
[ -n "$tele_addr" ] || { echo "metrics server address never appeared"; kill "$tele_pid"; exit 1; }
fetch() {
    python3 -c 'import sys, urllib.request
sys.stdout.write(urllib.request.urlopen(sys.argv[1], timeout=5).read().decode())' "http://$tele_addr$1"
}
# Scrape from outside the process while it is still running (the linger
# window guarantees it is). --slow-ms 0 logs every statement, so poll
# /slow until the run's queries show up.
tele_seen=""
for _ in $(seq 1 50); do
    if fetch /slow > "$tele_tmp/slow.json" 2>/dev/null \
        && grep -q '"id"' "$tele_tmp/slow.json"; then
        tele_seen=yes
        break
    fi
    sleep 0.1
done
[ -n "$tele_seen" ] || { echo "/slow never reflected the run"; kill "$tele_pid"; exit 1; }
fetch /metrics > "$tele_tmp/metrics.prom"
fetch /healthz > "$tele_tmp/healthz.json"
wait "$tele_pid" || { echo "telemetry run failed"; exit 1; }
cargo run --release -q -p gql-bench --bin experiments -- validate-prom "$tele_tmp/metrics.prom" \
    || { echo "/metrics is not valid Prometheus exposition"; exit 1; }
grep -q 'gql_engine_flwr_seconds_count' "$tele_tmp/metrics.prom" \
    || { echo "/metrics missing engine counters"; exit 1; }
python3 -m json.tool "$tele_tmp/healthz.json" > /dev/null \
    || { echo "/healthz is not valid JSON"; exit 1; }
grep -q '"status": "ok"' "$tele_tmp/healthz.json" \
    || { echo "/healthz not ok on a healthy run"; exit 1; }
python3 -m json.tool "$tele_tmp/slow.json" > /dev/null \
    || { echo "/slow is not valid JSON"; exit 1; }
plain=$(cargo run --release -q -p gql-cli -- run examples/gql/coauthors.gql \
    --data DBLP=examples/gql/dblp_sample.gql 2> /dev/null)
[ "$(cat "$tele_tmp/results.txt")" = "$plain" ] \
    || { echo "--metrics-addr changed query results"; exit 1; }
rm -rf "$tele_tmp"

echo "==> cargo bench --no-run (benches must compile)"
cargo bench --no-run -p gql-bench

echo "verify: OK"
