#!/usr/bin/env bash
# Repo verification gate: formatting, lints, release build, full test
# suite. CI runs exactly this script; run it locally before pushing.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test -q --workspace

echo "==> interned-kernel equivalence suite"
cargo test -q -p gql-match --test interned_equivalence

echo "==> CSR-snapshot equivalence suite"
cargo test -q -p gql-match --test csr_equivalence

echo "==> CSR smoke (match with and without --no-csr must agree)"
# Wall-clock lines differ run to run; compare everything else.
with_csr=$(cargo run --release -q -p gql-cli -- match \
    --graph examples/gql/triangle_net.gql --pattern examples/gql/triangle.gql \
    | grep -v '^time:')
without_csr=$(cargo run --release -q -p gql-cli -- match \
    --graph examples/gql/triangle_net.gql --pattern examples/gql/triangle.gql --no-csr \
    | grep -v '^time:')
[ "$with_csr" = "$without_csr" ] || { echo "CSR and --no-csr outputs differ"; exit 1; }
echo "$with_csr" | grep -q "matches: 2" || { echo "unexpected match count"; exit 1; }

echo "==> profile smoke (gql run --profile on the bundled example)"
cargo run --release -q -p gql-cli -- run examples/gql/coauthors.gql \
    --data DBLP=examples/gql/dblp_sample.gql --profile \
    | grep -q "match.search" || { echo "profile output missing phases"; exit 1; }

echo "==> cargo bench --no-run (benches must compile)"
cargo bench --no-run -p gql-bench

echo "verify: OK"
