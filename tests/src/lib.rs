//! Workspace integration-test crate; see `tests/` directory.
