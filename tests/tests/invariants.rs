//! Property-based invariants of the core data structures and access
//! methods.

use gql_core::{unify_nodes_full, Graph, NodeId, Profile, Tuple, Value};
use gql_match::{feasible_mates, search_space_ln, GraphIndex, LocalPruning, Pattern};
use proptest::prelude::*;

fn labels_strategy() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(0u8..5, 1..16)
}

fn graph_from(labels: &[u8], edges: &[(u8, u8)]) -> Graph {
    let names = ["A", "B", "C", "D", "E"];
    let mut g = Graph::new();
    for &l in labels {
        g.add_labeled_node(names[l as usize % names.len()]);
    }
    let n = labels.len() as u32;
    for &(a, b) in edges {
        let (a, b) = (a as u32 % n, b as u32 % n);
        if a != b {
            let _ = g.add_edge(NodeId(a), NodeId(b), Tuple::new());
        }
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Profile subsumption is a partial order: reflexive and
    /// transitive; and subsumption implies length ordering.
    #[test]
    fn profile_subsumption_partial_order(
        a in proptest::collection::vec(0u8..6, 0..12),
        b in proptest::collection::vec(0u8..6, 0..12),
        c in proptest::collection::vec(0u8..6, 0..12),
    ) {
        let mk = |v: &Vec<u8>| Profile::from_labels(v.iter().map(|x| Value::Int(*x as i64)));
        let (pa, pb, pc) = (mk(&a), mk(&b), mk(&c));
        prop_assert!(pa.subsumed_by(&pa));
        if pa.subsumed_by(&pb) && pb.subsumed_by(&pc) {
            prop_assert!(pa.subsumed_by(&pc));
        }
        if pa.subsumed_by(&pb) {
            prop_assert!(pa.len() <= pb.len());
        }
        if pa.subsumed_by(&pb) && pb.subsumed_by(&pa) {
            prop_assert_eq!(pa.labels(), pb.labels());
        }
    }

    /// Unification: the result never has more nodes/edges, never breaks
    /// the simple-graph invariants, and the node map is a surjection
    /// onto the new node set.
    #[test]
    fn unify_nodes_invariants(
        labels in labels_strategy(),
        edges in proptest::collection::vec((0u8..16, 0u8..16), 0..24),
        pairs in proptest::collection::vec((0u8..16, 0u8..16), 0..4),
    ) {
        let g = graph_from(&labels, &edges);
        let n = g.node_count() as u32;
        let pairs: Vec<(NodeId, NodeId)> = pairs
            .iter()
            .map(|&(a, b)| (NodeId(a as u32 % n), NodeId(b as u32 % n)))
            .collect();
        let r = unify_nodes_full(&g, &pairs).unwrap();
        prop_assert!(r.graph.node_count() <= g.node_count());
        prop_assert!(r.graph.edge_count() <= g.edge_count());
        prop_assert_eq!(r.node_map.len(), g.node_count());
        prop_assert_eq!(r.edge_map.len(), g.edge_count());
        // Surjectivity + in-range.
        let mut hit = vec![false; r.graph.node_count()];
        for m in &r.node_map {
            prop_assert!(m.index() < r.graph.node_count());
            hit[m.index()] = true;
        }
        prop_assert!(hit.iter().all(|&h| h));
        // Pairs really merged.
        for (a, b) in pairs {
            prop_assert_eq!(r.node_map[a.index()], r.node_map[b.index()]);
        }
        // No self-loops, no duplicate edges (simple-graph model).
        for (_, e) in r.graph.edges() {
            prop_assert_ne!(e.src, e.dst);
        }
    }

    /// Local pruning strategies form a chain: the subgraph-pruned space
    /// ⊆ profile-pruned space ⊆ attribute space (per pattern node).
    #[test]
    fn local_pruning_chain(
        labels in labels_strategy(),
        edges in proptest::collection::vec((0u8..16, 0u8..16), 0..24),
        ql in proptest::collection::vec(0u8..5, 1..4),
    ) {
        let g = graph_from(&labels, &edges);
        let mut pg = graph_from(&ql, &[]);
        // Make the pattern a path so it is connected.
        for i in 1..pg.node_count() {
            let _ = pg.add_edge(NodeId(i as u32 - 1), NodeId(i as u32), Tuple::new());
        }
        let p = Pattern::structural(pg);
        let idx = GraphIndex::build_full(&g, 1);
        let by_attr = feasible_mates(&p, &g, &idx, LocalPruning::NodeAttributes);
        let by_prof = feasible_mates(&p, &g, &idx, LocalPruning::Profiles { radius: 1 });
        let by_sub = feasible_mates(&p, &g, &idx, LocalPruning::Subgraphs { radius: 1 });
        for u in 0..p.node_count() {
            for v in &by_prof[u] {
                prop_assert!(by_attr[u].contains(v), "profiles ⊆ attrs");
            }
            for v in &by_sub[u] {
                prop_assert!(by_prof[u].contains(v), "subgraphs ⊆ profiles");
            }
        }
        // Log-space sizes follow the same chain.
        prop_assert!(search_space_ln(&by_sub) <= search_space_ln(&by_prof) + 1e-9);
        prop_assert!(search_space_ln(&by_prof) <= search_space_ln(&by_attr) + 1e-9);
    }

    /// Tuple subsumption: reflexive; preserved by adding attributes to
    /// the target.
    #[test]
    fn tuple_subsumption_monotone(
        base in proptest::collection::vec(("k[a-c]", 0i64..5), 0..4),
        extra_key in "x[a-c]",
        extra_val in 0i64..5,
    ) {
        let t: Tuple = base.iter().cloned().collect();
        prop_assert!(t.subsumes(&t));
        let mut bigger = t.clone();
        bigger.set(extra_key, extra_val);
        prop_assert!(t.subsumes(&bigger));
    }

    /// Value algebra: compare is antisymmetric and add/mul commute for
    /// numerics.
    #[test]
    fn value_algebra(a in -100i64..100, b in -100i64..100, x in -5.0f64..5.0) {
        let (va, vb) = (Value::Int(a), Value::Int(b));
        prop_assert_eq!(va.add(&vb), vb.add(&va));
        prop_assert_eq!(va.mul(&vb), vb.mul(&va));
        let vx = Value::Float(x);
        if let (Some(o1), Some(o2)) = (va.compare(&vx), vx.compare(&va)) {
            prop_assert_eq!(o1, o2.reverse());
        }
    }
}

/// The matcher's order optimizer always emits a permutation and its
/// estimated cost is non-negative.
#[test]
fn optimizer_outputs_permutations() {
    use gql_match::{optimize_order, GammaMode};
    for k in 1..8usize {
        let mut pg = Graph::new();
        for i in 0..k {
            pg.add_labeled_node(["A", "B"][i % 2]);
        }
        for i in 1..k {
            pg.add_edge(NodeId(0), NodeId(i as u32), Tuple::new())
                .unwrap();
        }
        let p = Pattern::structural(pg);
        let mates: Vec<Vec<NodeId>> = (0..k)
            .map(|i| (0..=i as u32).map(NodeId).collect())
            .collect();
        let so = optimize_order(&p, &mates, None, GammaMode::Constant(0.3));
        let mut sorted = so.order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..k).collect::<Vec<_>>());
        assert!(so.estimated_cost >= 0.0);
    }
}
