//! Property tests for the `Value` order axioms (including the exact
//! Int↔Float comparison across the 2^53 precision boundary) and
//! robustness of the binary storage codec against truncated, bit-flipped,
//! and arbitrary input — decoding must return `StorageError`, never
//! panic.

use gql_core::{decode_collection, decode_graph, encode_collection, encode_graph};
use gql_core::{Graph, Tuple, Value};
use proptest::prelude::*;
use std::cmp::Ordering;
use std::hash::{DefaultHasher, Hash, Hasher};

/// Values spanning every variant, biased toward the hard cases: integers
/// beyond 2^53 (where `as f64` loses precision), floats that are exact
/// integer images, fractions, and infinities.
fn value_strategy() -> BoxedStrategy<Value> {
    let hard_ints = proptest::sample::select(vec![
        i64::MIN,
        i64::MIN + 1,
        -(1 << 53) - 1,
        -(1 << 53),
        -1,
        0,
        1,
        (1 << 53),
        (1 << 53) + 1,
        i64::MAX - 1,
        i64::MAX,
    ]);
    let hard_floats = proptest::sample::select(vec![
        f64::NEG_INFINITY,
        i64::MIN as f64,
        -9.007_199_254_740_993e15,
        -0.5,
        -0.0,
        0.0,
        0.5,
        9.007_199_254_740_993e15,
        i64::MAX as f64,
        1e300,
        f64::INFINITY,
    ]);
    prop_oneof![
        any::<i64>().prop_map(Value::Int),
        hard_ints.prop_map(Value::Int),
        (-1e19f64..1e19).prop_map(Value::Float),
        any::<i64>().prop_map(|i| Value::Float(i as f64)),
        hard_floats.prop_map(Value::Float),
        "[a-c]{0,3}".prop_map(Value::Str),
        any::<bool>().prop_map(Value::Bool),
    ]
    .boxed()
}

fn hash_of(v: &Value) -> u64 {
    let mut h = DefaultHasher::new();
    v.hash(&mut h);
    h.finish()
}

fn le(a: &Value, b: &Value) -> bool {
    matches!(a.compare(b), Some(Ordering::Less | Ordering::Equal))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// `compare` is a partial order consistent with `Eq` and `Hash`:
    /// reflexive, antisymmetric (with exact Int↔Float equality), and
    /// its two orientations always agree.
    #[test]
    fn value_compare_is_reflexive_and_antisymmetric(
        a in value_strategy(),
        b in value_strategy(),
    ) {
        prop_assert_eq!(a.compare(&a), Some(Ordering::Equal), "{:?}", a);
        // compare(a,b) and compare(b,a) are mirror images (or both None).
        prop_assert_eq!(a.compare(&b), b.compare(&a).map(Ordering::reverse),
            "{:?} vs {:?}", a, b);
        // Antisymmetry: mutual ≤ means Equal, and equal values must hash
        // identically (mixed Int/Float pairs included — the lossy
        // `as f64` comparison violated this for large integers).
        if le(&a, &b) && le(&b, &a) {
            prop_assert_eq!(a.compare(&b), Some(Ordering::Equal));
            prop_assert_eq!(hash_of(&a), hash_of(&b), "{:?} vs {:?}", a, b);
        }
    }

    /// Transitivity across all variant mixes: a ≤ b ≤ c implies a ≤ c.
    /// The pre-fix rounding in Int↔Float comparison broke this around
    /// the 2^53 boundary (e.g. Int(2^53) vs Float(2^53) vs Int(2^53+1)).
    #[test]
    fn value_compare_is_transitive(
        a in value_strategy(),
        b in value_strategy(),
        c in value_strategy(),
    ) {
        if le(&a, &b) && le(&b, &c) {
            prop_assert!(le(&a, &c), "{:?} ≤ {:?} ≤ {:?} but not {:?} ≤ {:?}",
                a, b, c, a, c);
        }
        if a.compare(&b) == Some(Ordering::Equal) {
            // Equal values are interchangeable in any comparison.
            prop_assert_eq!(a.compare(&c), b.compare(&c),
                "{:?} == {:?} but they order {:?} differently", a, b, c);
        }
    }

    /// Arbitrary byte soup never panics the decoder.
    #[test]
    fn decode_arbitrary_bytes_never_panics(
        bytes in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let _ = decode_graph(&bytes);
        let _ = decode_collection(&bytes);
    }
}

/// A graph exercising every tuple tag the codec has: named/unnamed
/// nodes, all four `Value` variants, and edge attributes.
fn rich_graph() -> Graph {
    let mut g = Graph::named("rich");
    let mut attrs = Tuple::new();
    attrs.set("i", Value::Int(i64::MIN));
    attrs.set("f", Value::Float(-0.5));
    attrs.set("s", Value::Str("αβ\"\\".into()));
    attrs.set("b", Value::Bool(true));
    let a = g.add_named_node("a", attrs.clone());
    let b = g.add_node(Tuple::new());
    let c = g.add_labeled_node("C");
    g.add_edge(a, b, attrs).unwrap();
    g.add_edge(b, c, Tuple::new()).unwrap();
    g
}

#[test]
fn decode_rejects_every_truncation_without_panicking() {
    let bytes = encode_graph(&rich_graph());
    assert!(decode_graph(&bytes).is_ok(), "sanity: full buffer decodes");
    for len in 0..bytes.len() {
        assert!(
            decode_graph(&bytes[..len]).is_err(),
            "truncation to {len} bytes must fail"
        );
    }
}

#[test]
fn decode_rejects_every_single_bit_flip() {
    // The frame is checksummed, so any single-bit corruption — header,
    // body, or the CRC itself — must surface as an error.
    let bytes = encode_graph(&rich_graph());
    for i in 0..bytes.len() {
        for bit in 0..8 {
            let mut buf = bytes.clone();
            buf[i] ^= 1 << bit;
            assert!(
                decode_graph(&buf).is_err(),
                "flipping bit {bit} of byte {i} must fail"
            );
        }
    }
}

#[test]
fn collection_stream_truncations_never_panic() {
    let g = rich_graph();
    let bytes = encode_collection([&g, &g]);
    assert_eq!(decode_collection(&bytes).unwrap().len(), 2);
    for len in 0..bytes.len() {
        // A cut at a frame boundary legitimately yields a shorter
        // stream; anything else must error. Either way: no panic.
        if let Ok(graphs) = decode_collection(&bytes[..len]) {
            assert!(graphs.len() < 2, "truncation to {len} kept both frames");
        }
    }
}
