//! End-to-end reproductions of every worked example in the paper,
//! spanning parser → algebra → matcher → engine.

use gql_algebra::{compile_pattern_text, ops};
use gql_core::fixtures::*;
use gql_core::{GraphCollection, Value};
use gql_engine::Database;
use gql_match::{feasible_mates, match_pattern, GraphIndex, LocalPruning, MatchOptions, Pattern};
use gql_relational::{graph_to_database, pattern_to_sql, ExecLimits};

/// Figure 4.1 / Figure 4.2: the sample query has exactly one answer,
/// found identically by the graph matcher and the SQL pipeline.
#[test]
fn figure_4_1_sample_query_all_paths_agree() {
    let (g, ids) = figure_4_16_graph();
    let p = Pattern::structural(figure_4_16_pattern());

    let idx = GraphIndex::build_with_profiles(&g, 1);
    let rep = match_pattern(&p, &g, &idx, &MatchOptions::optimized());
    assert_eq!(rep.mappings.len(), 1);
    assert_eq!(rep.mappings[0], vec![ids[0], ids[2], ids[5]]);

    let sql_db = graph_to_database(&g).unwrap();
    let sql = pattern_to_sql(&p.graph);
    let rows = sql_db.query(&sql, &ExecLimits::default()).unwrap().rows;
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0], vec![Value::Int(0), Value::Int(2), Value::Int(5)]);
}

/// §1.2: "nodes A2 and C1 in G can be safely pruned since they have only
/// one neighbor. Node B2 can also be pruned after A2 is pruned."
#[test]
fn section_1_2_pruning_narrative() {
    let (g, ids) = figure_4_16_graph();
    let p = Pattern::structural(figure_4_16_pattern());
    let idx = GraphIndex::build(&g);
    let mut mates = feasible_mates(&p, &g, &idx, LocalPruning::NodeAttributes);
    gql_match::refine_search_space(&p, &g, &mut mates, p.node_count());
    assert!(!mates[0].contains(&ids[1]), "A2 pruned");
    assert!(!mates[2].contains(&ids[4]), "C1 pruned");
    assert!(!mates[1].contains(&ids[3]), "B2 pruned after A2");
}

/// Figure 4.8/4.9: pattern-to-graph binding Φ(P.v1) → G.v2,
/// Φ(P.v2) → G.v1.
#[test]
fn figure_4_9_binding_through_selection() {
    let p =
        compile_pattern_text(r#"graph P { node v1; node v2; } where v1.name="A" and v2.year>2000"#)
            .unwrap();
    let coll = GraphCollection::from_graph(figure_4_7_paper());
    let ms = ops::select(&p, &coll, &MatchOptions::optimized()).unwrap();
    assert_eq!(ms.len(), 1);
    assert_eq!(ms[0].node_attr("v1", "name"), Some(&Value::Str("A".into())));
    assert_eq!(ms[0].node_attr("v2", "year"), Some(&Value::Int(2006)));
}

/// Figure 4.13: the executed co-authorship query produces, step by
/// step, the final graph {A,B,C,D} with edges A–B, C–D, C–A, D–A.
#[test]
fn figure_4_13_execution_trace_final_state() {
    let mut db = Database::new();
    db.add_collection("DBLP", figure_4_13_dblp().into());
    db.execute(
        r#"
        graph P { node v1 <author>; node v2 <author>; };
        C := graph {};
        for P exhaustive in doc("DBLP")
        let C := graph {
            graph C;
            node P.v1, P.v2;
            edge e1 (P.v1, P.v2);
            unify P.v1, C.v1 where P.v1.name=C.v1.name;
            unify P.v2, C.v2 where P.v2.name=C.v2.name;
        };
    "#,
    )
    .unwrap();
    let c = db.var("C").unwrap();
    assert_eq!(c.node_count(), 4);
    assert_eq!(c.edge_count(), 4);
    let deg_by_name = |n: &str| {
        let v = c
            .nodes()
            .find(|(_, node)| node.attrs.get("name") == Some(&Value::Str(n.into())))
            .unwrap()
            .0;
        c.degree(v)
    };
    assert_eq!(deg_by_name("A"), 3);
    assert_eq!(deg_by_name("B"), 1);
    assert_eq!(deg_by_name("C"), 2);
    assert_eq!(deg_by_name("D"), 2);
}

/// Figure 4.17: the three retrieval strategies yield exactly the spaces
/// printed in the paper.
#[test]
fn figure_4_17_search_spaces() {
    let (g, ids) = figure_4_16_graph();
    let p = Pattern::structural(figure_4_16_pattern());
    let idx = GraphIndex::build_full(&g, 1);
    let by_nodes = feasible_mates(&p, &g, &idx, LocalPruning::NodeAttributes);
    assert_eq!(by_nodes[0], vec![ids[0], ids[1]]);
    assert_eq!(by_nodes[1], vec![ids[2], ids[3]]);
    assert_eq!(by_nodes[2], vec![ids[4], ids[5]]);
    let by_sub = feasible_mates(&p, &g, &idx, LocalPruning::Subgraphs { radius: 1 });
    assert_eq!(by_sub, vec![vec![ids[0]], vec![ids[2]], vec![ids[5]]]);
    let by_prof = feasible_mates(&p, &g, &idx, LocalPruning::Profiles { radius: 1 });
    assert_eq!(
        by_prof,
        vec![vec![ids[0]], vec![ids[2], ids[3]], vec![ids[5]]]
    );
}

/// Figure 4.19 / §4.4: the cost model prefers (A ⋈ C) ⋈ B.
#[test]
fn figure_4_19_search_order() {
    use gql_core::NodeId;
    use gql_match::{cost_of_order, optimize_order, GammaMode};
    let p = Pattern::structural(figure_4_16_pattern());
    let mates = vec![vec![NodeId(0)], vec![NodeId(2), NodeId(3)], vec![NodeId(5)]];
    let mode = GammaMode::Constant(0.5);
    let acb = cost_of_order(&p, &mates, &[0, 2, 1], None, mode);
    let abc = cost_of_order(&p, &mates, &[0, 1, 2], None, mode);
    assert!(acb < abc);
    let greedy = optimize_order(&p, &mates, None, mode);
    assert_eq!(greedy.order[2], 1, "B last in the greedy plan");
}

/// §3.5 Theorem 4.6 (GraphQL ⊆ Datalog): matcher and Datalog agree on
/// the Figure 4.16 workload.
#[test]
fn theorem_4_6_matcher_datalog_agreement() {
    use gql_datalog::{evaluate, graph_to_facts, pattern_to_program, FactStore};
    let (g, _) = figure_4_16_graph();
    let p = Pattern::structural(figure_4_16_pattern());
    let mut facts = FactStore::new();
    graph_to_facts(&g, &mut facts);
    evaluate(&pattern_to_program(&p), &mut facts);
    let idx = GraphIndex::build(&g);
    let rep = match_pattern(&p, &g, &idx, &MatchOptions::baseline());
    assert_eq!(facts.count("match"), rep.mappings.len());
}

/// Theorem 4.5 (RA ⊆ GraphQL): a relation as single-node graphs;
/// relational selection via a graph pattern; projection via composition.
#[test]
fn theorem_4_5_relational_algebra_embedding() {
    // Relation R(name, year) as a collection of single-node graphs.
    let rows = [("A", 1999i64), ("B", 2005), ("C", 2010)];
    let mut coll = GraphCollection::new();
    for (n, y) in rows {
        let mut g = gql_core::Graph::new();
        g.add_node(gql_core::Tuple::new().with("name", n).with("year", y));
        coll.push(g);
    }
    // σ_{year > 2000}
    let sel = compile_pattern_text("graph P { node t where year > 2000; }").unwrap();
    let selected = ops::select(&sel, &coll, &MatchOptions::optimized()).unwrap();
    assert_eq!(selected.len(), 2);
    // π_{name} via the composition operator.
    let prog = gql_parser::parse_program("T := graph { node n <name=P.t.name>; };").unwrap();
    let gql_parser::ast::Statement::Assign { template, .. } = &prog.statements[0] else {
        unreachable!()
    };
    let projected = ops::compose(template, &selected).unwrap();
    assert_eq!(projected.len(), 2);
    for g in &projected {
        let node = g.node(gql_core::NodeId(0));
        assert_eq!(node.attrs.len(), 1, "only the projected attribute");
        assert!(node.attrs.get("name").is_some());
    }
    // Cartesian product and difference round out the five primitives.
    let prod = ops::cartesian_product(&coll, &coll);
    assert_eq!(prod.len(), 9);
    let diff = ops::difference(&coll, &coll);
    assert!(diff.is_empty());
}
