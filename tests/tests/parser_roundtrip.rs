//! Property test: pretty-printing any generated AST re-parses to the
//! same AST (`parse ∘ print = id`).

use gql_core::{BinOp, Value};
use gql_parser::ast::*;
use gql_parser::parse_program;
use proptest::prelude::*;

fn ident() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9]{0,5}".prop_filter("not a keyword", |s| {
        gql_parser::token::Token::keyword(s).is_none()
    })
}

fn literal() -> impl Strategy<Value = Value> {
    prop_oneof![
        (-1000i64..1000).prop_map(Value::Int),
        "[ -~&&[^\"\\\\]]{0,8}".prop_map(Value::Str),
    ]
}

fn tuple() -> impl Strategy<Value = TupleAst> {
    (
        proptest::option::of(ident()),
        proptest::collection::vec((ident(), literal()), 0..3),
    )
        .prop_map(|(tag, attrs)| {
            // Duplicate keys round-trip ambiguously; dedup.
            let mut seen = std::collections::HashSet::new();
            let attrs = attrs
                .into_iter()
                .filter(|(k, _)| seen.insert(k.clone()))
                .collect();
            TupleAst { tag, attrs }
        })
}

fn expr(names: Vec<String>) -> impl Strategy<Value = ExprAst> {
    let leaf = prop_oneof![
        literal().prop_map(ExprAst::Literal),
        proptest::sample::select(names).prop_map(|n| ExprAst::Name(Names(vec![n, "attr".into()]))),
    ];
    leaf.prop_recursive(3, 16, 2, |inner| {
        (
            proptest::sample::select(vec![
                BinOp::Or,
                BinOp::And,
                BinOp::Add,
                BinOp::Mul,
                BinOp::Eq,
                BinOp::Lt,
                BinOp::Ge,
            ]),
            inner.clone(),
            inner,
        )
            .prop_map(|(op, l, r)| ExprAst::binary(op, l, r))
    })
}

fn pattern() -> impl Strategy<Value = GraphPatternAst> {
    (
        proptest::collection::vec((ident(), proptest::option::of(tuple())), 1..5),
        proptest::option::of(tuple()),
        proptest::option::of(ident()),
        any::<u32>(),
    )
        .prop_flat_map(|(raw_nodes, gtuple, gname, edge_seed)| {
            // Unique node names.
            let mut seen = std::collections::HashSet::new();
            let nodes: Vec<(String, Option<TupleAst>)> = raw_nodes
                .into_iter()
                .filter(|(n, _)| seen.insert(n.clone()))
                .collect();
            let names: Vec<String> = nodes.iter().map(|(n, _)| n.clone()).collect();
            let n = names.len();
            // Deterministic edge set from the seed over distinct pairs.
            let mut edges = Vec::new();
            if n >= 2 {
                let mut s = edge_seed;
                for i in 0..n {
                    for j in (i + 1)..n {
                        s = s.wrapping_mul(1664525).wrapping_add(1013904223);
                        if s % 3 == 0 {
                            edges.push(EdgeDecl {
                                name: Some(format!("e{i}_{j}")),
                                from: Names(vec![names[i].clone()]),
                                to: Names(vec![names[j].clone()]),
                                tuple: None,
                                where_clause: None,
                            });
                        }
                    }
                }
            }
            let members = {
                let mut m = vec![MemberDecl::Nodes(
                    nodes
                        .iter()
                        .map(|(name, tuple)| NodeDecl {
                            name: Some(name.clone()),
                            tuple: tuple.clone(),
                            where_clause: None,
                        })
                        .collect(),
                )];
                if !edges.is_empty() {
                    m.push(MemberDecl::Edges(edges));
                }
                m
            };
            (
                proptest::option::of(expr(names)),
                Just((members, gtuple, gname)),
            )
                .prop_map(|(wc, (members, tuple, name))| GraphPatternAst {
                    name,
                    tuple,
                    members,
                    where_clause: wc,
                })
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn print_parse_round_trip(p in pattern()) {
        let program = Program {
            statements: vec![Statement::Pattern(p)],
        };
        let printed = program.to_string();
        let reparsed = parse_program(&printed)
            .unwrap_or_else(|e| panic!("re-parse failed: {e}\n{printed}"));
        prop_assert_eq!(program, reparsed, "\n{}", printed);
    }
}
