//! Property tests: every implementation of pattern matching in the
//! workspace — the optimized matcher under all configurations, the
//! trusted backtracking oracle, the SQL pipeline, and the Datalog
//! translation — agrees on randomized workloads.

use gql_core::{iso, Graph, NodeId, Tuple};
use gql_datagen::{connected_subgraph_query, erdos_renyi, ErConfig};
use gql_match::{match_pattern, GraphIndex, LocalPruning, MatchOptions, Pattern, RefineLevel};
use gql_relational::{graph_to_database, pattern_to_sql, ExecLimits};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A small random labeled graph strategy (proptest-native, no rand).
fn small_graph() -> impl Strategy<Value = Graph> {
    (2usize..9, proptest::collection::vec(0u8..4, 0..24)).prop_map(|(n, pairs)| {
        let mut g = Graph::new();
        let labels = ["A", "B", "C", "D"];
        for i in 0..n {
            g.add_labeled_node(labels[i % labels.len()]);
        }
        for (k, l) in pairs.iter().enumerate() {
            let a = (k % n) as u32;
            let b = ((*l as usize + k / n) % n) as u32;
            if a != b {
                let _ = g.add_edge(NodeId(a), NodeId(b), Tuple::new());
            }
        }
        g
    })
}

fn small_pattern() -> impl Strategy<Value = Graph> {
    (1usize..4, 0u8..4, 0u8..4).prop_map(|(n, l1, l2)| {
        let labels = ["A", "B", "C", "D"];
        let mut p = Graph::new();
        let ids: Vec<NodeId> = (0..n)
            .map(|i| p.add_labeled_node(labels[(l1 as usize + i * l2 as usize) % labels.len()]))
            .collect();
        for w in ids.windows(2) {
            let _ = p.add_edge(w[0], w[1], Tuple::new());
        }
        if n == 3 && l2 % 2 == 0 {
            let _ = p.add_edge(ids[0], ids[2], Tuple::new());
        }
        p
    })
}

fn count_config(g: &Graph, p: &Pattern, opts: &MatchOptions, idx: &GraphIndex) -> usize {
    match_pattern(p, g, idx, opts).mappings.len()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// All matcher configurations return the same mapping count, and a
    /// positive count iff the trusted oracle embeds the pattern.
    #[test]
    fn matcher_configs_agree_with_oracle(g in small_graph(), pm in small_pattern()) {
        let p = Pattern::structural(pm.clone());
        let idx = GraphIndex::build_full(&g, 1);
        let base = count_config(&g, &p, &MatchOptions::baseline(), &idx);
        let opt = count_config(&g, &p, &MatchOptions::optimized(), &idx);
        let sub = count_config(&g, &p, &MatchOptions {
            pruning: LocalPruning::Subgraphs { radius: 1 },
            refine: RefineLevel::Fixed(3),
            ..MatchOptions::default()
        }, &idx);
        prop_assert_eq!(base, opt);
        prop_assert_eq!(base, sub);
        let oracle = iso::subgraph_isomorphic(&pm, &g);
        prop_assert_eq!(oracle, base > 0);
    }

    /// The SQL pipeline counts exactly the matcher's mappings.
    #[test]
    fn sql_pipeline_agrees(g in small_graph(), pm in small_pattern()) {
        let p = Pattern::structural(pm.clone());
        let idx = GraphIndex::build(&g);
        let matcher = count_config(&g, &p, &MatchOptions::baseline(), &idx);
        let db = graph_to_database(&g).unwrap();
        let rows = db.query(&pattern_to_sql(&pm), &ExecLimits::default()).unwrap().rows;
        prop_assert_eq!(matcher, rows.len());
    }

    /// The Datalog translation counts exactly the matcher's mappings.
    #[test]
    fn datalog_translation_agrees(g in small_graph(), pm in small_pattern()) {
        use gql_datalog::{evaluate, graph_to_facts, pattern_to_program, FactStore};
        let p = Pattern::structural(pm);
        let idx = GraphIndex::build(&g);
        let matcher = count_config(&g, &p, &MatchOptions::baseline(), &idx);
        let mut facts = FactStore::new();
        graph_to_facts(&g, &mut facts);
        evaluate(&pattern_to_program(&p), &mut facts);
        prop_assert_eq!(matcher, facts.count("match"));
    }

    /// Refinement never changes the answer set, only the search space.
    #[test]
    fn refinement_is_answer_preserving(g in small_graph(), pm in small_pattern()) {
        let p = Pattern::structural(pm);
        let idx = GraphIndex::build(&g);
        let without = count_config(&g, &p, &MatchOptions {
            refine: RefineLevel::Off,
            ..MatchOptions::baseline()
        }, &idx);
        let with = count_config(&g, &p, &MatchOptions {
            refine: RefineLevel::Fixed(8),
            ..MatchOptions::baseline()
        }, &idx);
        prop_assert_eq!(without, with);
    }
}

/// Deterministic medium-size agreement run on an Erdős–Rényi graph: the
/// four pipelines agree on extracted (guaranteed-answerable) queries.
#[test]
fn er_graph_cross_validation() {
    let g = erdos_renyi(&ErConfig {
        nodes: 300,
        edges: 900,
        labels: 12,
        seed: 99,
    });
    let idx = GraphIndex::build_full(&g, 1);
    let db = graph_to_database(&g).unwrap();
    let mut rng = StdRng::seed_from_u64(123);
    let mut checked = 0;
    for _ in 0..40 {
        let Some(q) = connected_subgraph_query(&g, 4, &mut rng) else {
            continue;
        };
        let p = Pattern::structural(q.clone());
        let mut opts = MatchOptions::optimized();
        opts.max_matches = 5000;
        let optimized = match_pattern(&p, &g, &idx, &opts).mappings.len();
        let mut base = MatchOptions::baseline();
        base.max_matches = 5000;
        let baseline = match_pattern(&p, &g, &idx, &base).mappings.len();
        assert_eq!(optimized, baseline, "query {q}");
        if optimized < 5000 {
            let rows = db
                .query(&pattern_to_sql(&q), &ExecLimits::default())
                .unwrap()
                .rows
                .len();
            assert_eq!(optimized, rows, "query {q}");
        }
        assert!(
            optimized >= 1,
            "extracted query must have its own embedding"
        );
        checked += 1;
    }
    assert!(checked >= 20, "enough queries exercised: {checked}");
}
