// Vendored API shim: keep close to upstream shape; exempt from style lints.
#![allow(clippy::all, unused, dead_code)]

//! Workspace-internal stand-in for the `rand` crate.
//!
//! The build environment has no network access, so this crate supplies
//! the subset of the `rand` 0.8 API the workspace uses: [`rngs::StdRng`]
//! (and [`rngs::SmallRng`]), [`SeedableRng::seed_from_u64`], and the
//! [`Rng`] extension methods `gen`, `gen_range`, and `gen_bool`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — fast,
//! high-quality, and fully deterministic per seed. Streams do **not**
//! match upstream `StdRng` (ChaCha12); any test that depended on exact
//! upstream values has been updated to the streams produced here.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit source, as in `rand_core`.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;

    /// Builds a generator from OS "entropy". Offline stand-in: a fixed
    /// arbitrary seed — deterministic by design.
    fn from_entropy() -> Self {
        Self::seed_from_u64(0x9e37_79b9_7f4a_7c15)
    }
}

/// Types samplable uniformly over their whole domain (`rng.gen()`).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types uniformly samplable from half-open/closed bounds — the pivot
/// that lets integer-literal ranges unify with the result type the
/// caller needs (mirroring `rand`'s `SampleUniform`).
pub trait SampleUniform: Sized {
    /// Uniform draw from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
    fn sample_bounds<R: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R)
        -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_bounds<R: RngCore + ?Sized>(lo: $t, hi: $t, inclusive: bool, rng: &mut R) -> $t {
                let span = hi as i128 - lo as i128 + inclusive as i128;
                assert!(span > 0, "cannot sample empty range");
                let v = (rng.next_u64() as u128) % (span as u128);
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_bounds<R: RngCore + ?Sized>(lo: f64, hi: f64, _inclusive: bool, rng: &mut R) -> f64 {
        assert!(lo < hi, "cannot sample empty range");
        lo + f64::sample(rng) * (hi - lo)
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range. Panics when empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_bounds(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_bounds(*self.start(), *self.end(), true, rng)
    }
}

/// High-level sampling methods, blanket-implemented for every bit
/// source, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// A uniform value over the full domain of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform value from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0,1]");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the stand-in for `rand`'s `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 seed expansion, per the xoshiro reference.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Alias: the "small" generator is the same xoshiro256++ here.
    pub type SmallRng = StdRng;
}

/// `rand::prelude`-style glob imports.
pub mod prelude {
    pub use super::rngs::{SmallRng, StdRng};
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let va: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        assert_eq!(va, vb);
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(va[0], c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((1800..3200).contains(&hits), "hits={hits}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
