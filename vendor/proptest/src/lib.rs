// Vendored API shim: keep close to upstream shape; exempt from style lints.
#![allow(clippy::all, unused, dead_code)]

//! Workspace-internal stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so this crate supplies
//! the subset of the proptest API the workspace's property tests use:
//! the [`Strategy`] trait with `prop_map` / `prop_filter` /
//! `prop_flat_map` / `prop_recursive`, integer-range and regex-subset
//! string strategies, tuple/vec/option/select combinators, and the
//! [`proptest!`] / [`prop_oneof!`] / `prop_assert*` macros.
//!
//! Differences from upstream: generation only — failing cases are *not*
//! shrunk, they panic with the generated inputs' debug output via the
//! assertion message. Each test function's stream is deterministic (the
//! seed is derived from the test name), so failures reproduce exactly.

#![warn(missing_docs)]

use std::rc::Rc;

#[doc(hidden)]
pub use rand as __rand;
use rand::rngs::StdRng;
use rand::Rng;

/// Runner configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` generated cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// FNV-1a over a string — stable per-test seeds.
#[doc(hidden)]
pub fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// A value generator. Upstream proptest separates strategies from value
/// trees (for shrinking); here a strategy simply draws values.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Rejects values failing `pred` (regenerates, up to a retry cap).
    fn prop_filter<F>(self, reason: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason,
            pred,
        }
    }

    /// Generates an intermediate value, then draws from the strategy it
    /// selects.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    /// Builds a recursive strategy: `self` is the leaf case and
    /// `expand` wraps the strategy-so-far one level deeper. `depth`
    /// bounds nesting; the size/branch hints of upstream are accepted
    /// and ignored.
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        expand: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
    {
        let leaf = self.boxed();
        let mut cur = leaf.clone();
        for _ in 0..depth {
            cur = Union::new(vec![leaf.clone(), expand(cur).boxed()]).boxed();
        }
        cur
    }

    /// Type-erases the strategy (cheaply clonable).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A type-erased, clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        self.0.generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter retry cap hit: {}", self.reason);
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut StdRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Uniform choice among alternatives ([`prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over the given alternatives (must be non-empty).
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        let i = rng.gen_range(0..self.arms.len());
        self.arms[i].generate(rng)
    }
}

/// Always generates a clone of the given value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

/// Types with a canonical full-domain strategy ([`any`]).
pub trait Arbitrary {
    /// Draws one value over the whole domain.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.gen::<$t>()
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen::<bool>()
    }
}

/// Strategy over the full domain of `T` (`any::<u32>()`).
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A 0);
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
    (A 0, B 1, C 2, D 3, E 4);
    (A 0, B 1, C 2, D 3, E 4, F 5);
}

/// `Vec` strategies.
pub mod collection {
    use super::*;

    /// A vector whose length is drawn from `size` and whose elements
    /// are drawn from `elem`.
    pub fn vec<S: Strategy>(elem: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, size }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        elem: S,
        size: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.size.clone());
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// `Option` strategies.
pub mod option {
    use super::*;

    /// `Some(value)` half the time, `None` the other half.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// See [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Option<S::Value> {
            if rng.gen_bool(0.5) {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }
}

/// Sampling from fixed collections.
pub mod sample {
    use super::*;

    /// Uniformly selects one element of `items` (must be non-empty).
    pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
        assert!(!items.is_empty(), "select over empty collection");
        Select { items }
    }

    /// See [`select`].
    pub struct Select<T> {
        items: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            let i = rng.gen_range(0..self.items.len());
            self.items[i].clone()
        }
    }
}

mod regex_gen;

impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut StdRng) -> String {
        regex_gen::generate(self, rng)
    }
}

/// Everything the tests glob-import.
pub mod prelude {
    pub use super::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Property assertion — plain `assert!` (no shrinking here).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Property equality assertion — plain `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Property inequality assertion — plain `assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { .. }`
/// becomes a `#[test]` running `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng =
                <$crate::__rand::rngs::StdRng as $crate::__rand::SeedableRng>::seed_from_u64(
                    $crate::fnv1a(concat!(module_path!(), "::", stringify!($name))),
                );
            for __case in 0..__cfg.cases {
                let _ = __case;
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                $body
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::Strategy as _;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_maps(x in 0u8..5, v in crate::collection::vec(0i64..10, 1..4)) {
            prop_assert!(x < 5);
            prop_assert!((1..4).contains(&v.len()));
            prop_assert!(v.iter().all(|&e| (0..10).contains(&e)));
        }

        #[test]
        fn oneof_and_filter(y in prop_oneof![0u32..3, 10u32..13]) {
            prop_assert!(y < 3 || (10..13).contains(&y));
        }
    }

    #[test]
    fn regex_strategies_generate_matching_strings() {
        let mut rng = <crate::__rand::rngs::StdRng as crate::__rand::SeedableRng>::seed_from_u64(1);
        for _ in 0..200 {
            let s = crate::Strategy::generate(&"[a-z][a-z0-9]{0,5}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 6, "{s:?}");
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()));

            let t = crate::Strategy::generate(&"k[a-c]", &mut rng);
            assert!(t.len() == 2 && t.starts_with('k'), "{t:?}");

            let u = crate::Strategy::generate(&"[ -~&&[^\"\\\\]]{0,8}", &mut rng);
            assert!(u.len() <= 8);
            assert!(
                u.chars()
                    .all(|c| (' '..='~').contains(&c) && c != '"' && c != '\\'),
                "{u:?}"
            );
        }
    }

    #[test]
    fn recursive_strategy_terminates() {
        #[derive(Debug, Clone)]
        enum T {
            Leaf(u8),
            Node(Box<T>, Box<T>),
        }
        fn depth(t: &T) -> u32 {
            match t {
                T::Leaf(_) => 0,
                T::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let strat = (0u8..10)
            .prop_map(T::Leaf)
            .prop_recursive(3, 16, 2, |inner| {
                (inner.clone(), inner).prop_map(|(a, b)| T::Node(Box::new(a), Box::new(b)))
            });
        let mut rng = <crate::__rand::rngs::StdRng as crate::__rand::SeedableRng>::seed_from_u64(9);
        for _ in 0..100 {
            assert!(depth(&crate::Strategy::generate(&strat, &mut rng)) <= 3);
        }
    }
}
