//! Generator for the regex subset the workspace's string strategies
//! use: literal characters, character classes (ranges, escapes, `^`
//! negation, `&&` intersection, one level of nesting), and `{m,n}` /
//! `{n}` quantifiers. The alphabet is printable ASCII (0x20–0x7E).

use rand::rngs::StdRng;
use rand::Rng;

const MIN_CHAR: u8 = 0x20;
const MAX_CHAR: u8 = 0x7e;

/// One sequential element: an allowed-character set plus repetition.
struct Element {
    allowed: Vec<char>,
    min: usize,
    max: usize,
}

/// Generates a string matching `pattern`.
pub fn generate(pattern: &str, rng: &mut StdRng) -> String {
    let elements = parse(pattern);
    let mut out = String::new();
    for el in &elements {
        let n = rng.gen_range(el.min..=el.max);
        for _ in 0..n {
            let i = rng.gen_range(0..el.allowed.len());
            out.push(el.allowed[i]);
        }
    }
    out
}

fn parse(pattern: &str) -> Vec<Element> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0;
    let mut out: Vec<Element> = Vec::new();
    while i < chars.len() {
        let allowed = match chars[i] {
            '[' => {
                let (set, next) = parse_class(&chars, i + 1);
                i = next;
                set
            }
            '\\' => {
                i += 2;
                vec![chars[i - 1]]
            }
            c => {
                i += 1;
                vec![c]
            }
        };
        assert!(!allowed.is_empty(), "empty character class in {pattern:?}");
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .expect("unclosed quantifier")
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((lo, hi)) => (lo.parse().unwrap(), hi.parse().unwrap()),
                None => {
                    let n = body.parse().unwrap();
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        out.push(Element { allowed, min, max });
    }
    out
}

/// Parses a class body starting after `[`, returning the allowed set
/// and the index just past the closing `]`. Supports `&&` intersection
/// whose operands are plain specs or nested bracketed classes.
fn parse_class(chars: &[char], mut i: usize) -> (Vec<char>, usize) {
    let mut result: Option<[bool; 256]> = None;
    let intersect = |set: [bool; 256], result: &mut Option<[bool; 256]>| match result {
        None => *result = Some(set),
        Some(r) => {
            for (a, b) in r.iter_mut().zip(set.iter()) {
                *a &= *b;
            }
        }
    };

    loop {
        // One operand: nested class or plain spec up to `&&` / `]`.
        if chars[i] == '[' {
            let (nested, next) = parse_class(chars, i + 1);
            let mut set = [false; 256];
            for c in nested {
                set[c as usize] = true;
            }
            intersect(set, &mut result);
            i = next;
        } else {
            let negated = chars[i] == '^';
            if negated {
                i += 1;
            }
            let mut set = [false; 256];
            while i < chars.len() && chars[i] != ']' && !(chars[i] == '&' && chars[i + 1] == '&') {
                let lo = if chars[i] == '\\' {
                    i += 2;
                    chars[i - 1]
                } else {
                    i += 1;
                    chars[i - 1]
                };
                // Range `a-z` (a trailing `-` before `]` is a literal).
                if i + 1 < chars.len() && chars[i] == '-' && chars[i + 1] != ']' {
                    let hi = if chars[i + 1] == '\\' {
                        i += 3;
                        chars[i - 1]
                    } else {
                        i += 2;
                        chars[i - 1]
                    };
                    for b in lo as usize..=hi as usize {
                        set[b] = true;
                    }
                } else {
                    set[lo as usize] = true;
                }
            }
            if negated {
                let mut full = [false; 256];
                for (b, slot) in full
                    .iter_mut()
                    .enumerate()
                    .take(MAX_CHAR as usize + 1)
                    .skip(MIN_CHAR as usize)
                {
                    *slot = !set[b];
                }
                set = full;
            }
            intersect(set, &mut result);
        }
        match chars[i] {
            ']' => {
                i += 1;
                break;
            }
            '&' if chars[i + 1] == '&' => {
                i += 2;
            }
            other => panic!("unexpected {other:?} in character class"),
        }
    }

    let set = result.expect("empty character class");
    let allowed = (MIN_CHAR..=MAX_CHAR)
        .filter(|&b| set[b as usize])
        .map(|b| b as char)
        .collect();
    (allowed, i)
}
