// Vendored API shim: keep close to upstream shape; exempt from style lints.
#![allow(clippy::all, unused, dead_code)]

//! Workspace-internal stand-in for the `rustc-hash` crate.
//!
//! The build environment has no network access, so external crates
//! cannot be fetched. This crate provides the same public surface the
//! workspace uses (`FxHashMap`, `FxHashSet`, `FxHasher`,
//! `FxBuildHasher`) backed by a fast multiply-rotate hash in the same
//! family as the original FxHash. Not intended to be hash-compatible
//! with the upstream crate — only drop-in at the API level.

#![warn(missing_docs)]

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` keyed by [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed by [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 26;

/// A fast, non-cryptographic, deterministic hasher: the classic
/// "firefox hash" word-at-a-time multiply-rotate mix.
#[derive(Clone, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            // Length tag so "a\0" and "a" differ.
            word[7] = rest.len() as u8 | 0x80;
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        // Final avalanche so low bits depend on all input bits (HashMap
        // uses the low bits for bucket selection).
        let mut h = self.hash;
        h ^= h >> 32;
        h = h.wrapping_mul(0xd6e8_feb8_6659_fd93);
        h ^= h >> 32;
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_and_set_work() {
        let mut m: FxHashMap<String, i32> = FxHashMap::default();
        m.insert("a".into(), 1);
        m.insert("b".into(), 2);
        assert_eq!(m.get("a"), Some(&1));
        let mut s: FxHashSet<(u32, u32)> = FxHashSet::default();
        assert!(s.insert((1, 2)));
        assert!(!s.insert((1, 2)));
    }

    #[test]
    fn hash_is_deterministic_and_spreads() {
        let h = |bytes: &[u8]| {
            let mut hasher = FxHasher::default();
            hasher.write(bytes);
            hasher.finish()
        };
        assert_eq!(h(b"hello"), h(b"hello"));
        assert_ne!(h(b"hello"), h(b"hellp"));
        assert_ne!(h(b"a"), h(b"a\0"));
    }
}
