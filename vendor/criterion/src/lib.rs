// Vendored API shim: keep close to upstream shape; exempt from style lints.
#![allow(clippy::all, unused, dead_code)]

//! Workspace-internal stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so this crate supplies
//! the subset of the criterion API the workspace's benches use:
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`] with
//! `sample_size` / `warm_up_time` / `measurement_time` /
//! `bench_with_input`, [`BenchmarkId`], `black_box`, and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Statistics are intentionally simple: each benchmark runs for the
//! configured measurement window and reports min / mean / median
//! per-iteration wall-clock time. Under `cargo test` (which passes
//! `--test` to `harness = false` bench binaries) every benchmark body
//! runs exactly once, as a smoke test.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export-compatible `black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifies one parameterized benchmark: `name/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// Just a parameter (used with a group-level function name).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Drives one benchmark's iterations.
pub struct Bencher {
    /// True when invoked via `cargo test`: run the body once.
    test_mode: bool,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    /// Collected per-iteration times, filled by [`Bencher::iter`].
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `f` repeatedly; the routine's result is black-boxed.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.test_mode {
            black_box(f());
            return;
        }
        // Warm-up.
        let start = Instant::now();
        while start.elapsed() < self.warm_up {
            black_box(f());
        }
        // Measurement: up to sample_size samples within the window.
        let window = Instant::now();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            black_box(f());
            self.samples.push(t.elapsed());
            if window.elapsed() > self.measurement {
                break;
            }
        }
    }
}

fn report(id: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{id:<50} ok (test mode)");
        return;
    }
    let mut sorted: Vec<Duration> = samples.to_vec();
    sorted.sort();
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    println!(
        "{id:<50} min {:>12?}  mean {:>12?}  median {:>12?}  ({} samples)",
        sorted[0],
        mean,
        sorted[sorted.len() / 2],
        samples.len()
    );
}

/// The top-level harness handle.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            test_mode: std::env::args().any(|a| a == "--test"),
        }
    }
}

impl Criterion {
    /// Configure-from-args constructor (compat shim; no-op).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one(self.test_mode, id, Defaults::default(), f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let test_mode = self.test_mode;
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            test_mode,
            cfg: Defaults::default(),
        }
    }

    /// Finalizes reporting (compat shim; no-op).
    pub fn final_summary(&mut self) {}
}

#[derive(Clone, Copy)]
struct Defaults {
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
}

impl Default for Defaults {
    fn default() -> Self {
        Defaults {
            sample_size: 100,
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(2),
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(test_mode: bool, id: &str, cfg: Defaults, mut f: F) {
    let mut b = Bencher {
        test_mode,
        sample_size: cfg.sample_size,
        warm_up: cfg.warm_up,
        measurement: cfg.measurement,
        samples: Vec::new(),
    };
    f(&mut b);
    report(id, &b.samples);
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    test_mode: bool,
    cfg: Defaults,
}

impl BenchmarkGroup<'_> {
    /// Target number of samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.cfg.sample_size = n;
        self
    }

    /// Warm-up duration before measuring.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.cfg.warm_up = d;
        self
    }

    /// Measurement window.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.cfg.measurement = d;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        run_one(self.test_mode, &full, self.cfg, f);
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.id);
        run_one(self.test_mode, &full, self.cfg, |b| f(b, input));
        self
    }

    /// Closes the group (compat shim; no-op).
    pub fn finish(self) {}
}

/// Declares a group-runner function calling each benchmark function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
